//! The time-travel layer end to end: retention policies and pins,
//! `Session::at` history reads, branch workspaces with deterministic
//! merge-forward conflicts, impact queries on retained snapshots, and
//! the wire-level history surface of `cad-net`.
//!
//! The §15 contract under test:
//!
//! * history reads are `&self`, answer exactly what the retained seq
//!   saw, and never touch (or block on) the write path;
//! * misses are the typed `SeqUnreachable` error naming the closest
//!   retained boundary;
//! * `merge_forward` commits either `MergeApplied` or a typed
//!   `MergeConflict` event — the conflict changes nothing and is
//!   byte-identical at every shard count;
//! * the `cad-net` history requests answer like the in-process
//!   service, scoped to the session's authenticated user, without
//!   executing ops.

use cad_net::{Client, Server, ServerConfig, WireError};
use cad_vfs::Blob;
use hybrid::{
    Engine, Event, HybridError, MergeConflict, Op, RetentionPolicy, Service, ShardedService,
    ToolOutput,
};
use jcf::{CellVersionId, DesignObjectId, DovId, TeamId, UserId, VariantId};

// --- single-engine scaffolding ------------------------------------------

/// A service with two designers, one project, one cell version and one
/// published design object version — the smallest §2.1 cast that can
/// branch, merge and conflict.
struct HistoryRig {
    service: Service,
    alice: hybrid::Session,
    bob: hybrid::Session,
    flow: hybrid::StandardFlow,
    team: TeamId,
    cv: CellVersionId,
    variant: VariantId,
    dov: DovId,
    /// The commit seq right after the first activity (dov exists,
    /// still unpublished).
    staged_seq: u64,
    /// The commit seq right after the publish.
    published_seq: u64,
}

fn rig_with(policy: RetentionPolicy) -> HistoryRig {
    let service = Service::with_retention(Engine::builder().build(), policy);
    let admin = service.open_session(service.admin());
    let alice_id = admin.add_user("alice", false).expect("alice");
    let bob_id = admin.add_user("bob", false).expect("bob");
    let team = admin.add_team("asic").expect("team");
    admin.add_team_member(team, alice_id).expect("alice joins");
    admin.add_team_member(team, bob_id).expect("bob joins");
    let flow = admin.standard_flow("asic").expect("flow");
    let project = admin.create_project("alu16").expect("project");
    let cell = admin.create_cell(project, "adder").expect("cell");
    let (cv, variant) = admin
        .create_cell_version(cell, flow.flow, team)
        .expect("cell version");
    let alice = service.open_session(alice_id);
    let bob = service.open_session(bob_id);
    alice.reserve(cv).expect("reserve");
    let (staged_seq, event) = alice
        .apply_seq(Op::RunActivity {
            user: alice_id,
            variant,
            activity: flow.enter_schematic,
            override_pending: false,
            outputs: vec![("schematic".into(), Blob::from(b"netlist v1".to_vec()))],
            session_error: None,
        })
        .expect("activity");
    let dov = match event {
        Event::ActivityRun { dovs } => dovs[0],
        other => panic!("activity produced {other:?}"),
    };
    alice.publish(cv).expect("publish");
    let published_seq = staged_seq + 1;
    HistoryRig {
        service,
        alice,
        bob,
        flow,
        team,
        cv,
        variant,
        dov,
        staged_seq,
        published_seq,
    }
}

fn rig() -> HistoryRig {
    rig_with(RetentionPolicy::default())
}

// --- retention ----------------------------------------------------------

#[test]
fn last_n_retention_is_a_sliding_window_with_typed_misses() {
    let rig = rig_with(RetentionPolicy::LastN(3));
    for i in 0..4 {
        rig.alice
            .apply(Op::CreateProject {
                name: format!("w{i}"),
            })
            .expect("fresh project");
    }
    let head = rig.service.snapshot().seq();
    let retained = rig.service.retained_seqs();
    assert_eq!(retained, vec![head - 2, head - 1, head]);
    // An evicted seq misses with the closest retained boundary.
    match rig.alice.at(rig.staged_seq).unwrap_err() {
        HybridError::SeqUnreachable {
            requested,
            reachable,
        } => {
            assert_eq!(requested, rig.staged_seq);
            assert_eq!(reachable, head - 2, "the closest retained boundary");
        }
        other => panic!("expected SeqUnreachable, got {other:?}"),
    }
    assert_eq!(rig.alice.at(head).expect("head retained").seq(), head);
}

#[test]
fn every_nth_retention_keeps_checkpoint_cadence_seqs() {
    let rig = rig_with(RetentionPolicy::EveryNth { stride: 5, cap: 8 });
    for i in 0..9 {
        rig.alice
            .apply(Op::CreateProject {
                name: format!("w{i}"),
            })
            .expect("fresh project");
    }
    for seq in rig.service.retained_seqs() {
        assert_eq!(seq % 5, 0, "stride-5 policy retained seq {seq}");
    }
    assert!(!rig.service.retained_seqs().is_empty());
}

#[test]
fn pins_survive_eviction_until_unpinned() {
    let rig = rig_with(RetentionPolicy::LastN(2));
    let pinned = rig.service.snapshot().seq();
    rig.service.pin(pinned).expect("pin a retained seq");
    for i in 0..6 {
        rig.alice
            .apply(Op::CreateProject {
                name: format!("w{i}"),
            })
            .expect("fresh project");
    }
    assert!(
        rig.service.retained_seqs().contains(&pinned),
        "pinned seq outlives the LastN(2) window"
    );
    assert_eq!(rig.alice.at(pinned).expect("pinned read").seq(), pinned);
    assert!(rig.service.unpin(pinned));
    assert!(!rig.service.unpin(pinned), "unpin is idempotent");
    assert!(
        rig.alice.at(pinned).is_err(),
        "unpinned seq falls out of the evicted window"
    );
    // Pinning something never retained is the same typed miss.
    assert!(matches!(
        rig.service.pin(99_999).unwrap_err(),
        HybridError::SeqUnreachable { .. }
    ));
}

// --- time-travel reads --------------------------------------------------

#[test]
fn history_views_answer_what_the_retained_seq_saw() {
    let rig = rig();
    // Before the publish, bob could not see the dov; after, he can.
    let before = rig.bob.at(rig.staged_seq).expect("retained");
    assert_eq!(before.seq(), rig.staged_seq);
    assert!(
        before.read_design_data(rig.dov).is_err(),
        "unpublished data stays invisible to bob at the old seq"
    );
    let after = rig.bob.at(rig.published_seq).expect("retained");
    assert_eq!(
        after.read_design_data(rig.dov).expect("published"),
        Blob::from(b"netlist v1".to_vec())
    );
    // The holder saw it at both seqs (browse and read agree).
    let alices = rig.alice.at(rig.staged_seq).expect("retained");
    let read = alices.read_design_data(rig.dov).expect("holder reads");
    assert_eq!(alices.browse(rig.dov).expect("holder browses"), read);
    assert_eq!(read, Blob::from(b"netlist v1".to_vec()));
}

#[test]
fn history_reads_are_zero_copy_and_never_journal() {
    let rig = rig();
    let hv = rig.alice.at(rig.published_seq).expect("retained");
    let seq_before = rig.service.snapshot().seq();
    let copies_before = Blob::materializations();
    let a = hv.read_design_data(rig.dov).expect("read");
    let b = hv.browse(rig.dov).expect("browse");
    assert!(Blob::ptr_eq(&a, &b), "one shared payload");
    assert_eq!(Blob::materializations(), copies_before, "no byte copies");
    assert_eq!(
        rig.service.snapshot().seq(),
        seq_before,
        "nothing journaled"
    );
}

#[test]
fn apply_seq_gives_read_your_writes_time_travel() {
    let rig = rig();
    let (seq, event) = rig
        .alice
        .apply_seq(Op::CreateProject { name: "rw".into() })
        .expect("fresh project");
    let project = match event {
        Event::ProjectCreated(id) => id,
        other => panic!("create-project produced {other:?}"),
    };
    let hv = rig.alice.at(seq).expect("own write retained");
    assert_eq!(hv.library_of(project).expect("own write visible"), "rw");
    // One seq earlier the project does not exist yet.
    let prev = rig.alice.at(seq - 1).expect("previous seq retained");
    assert!(prev.library_of(project).is_err());
}

#[test]
fn history_views_are_isolated_from_later_writes_and_block_no_writers() {
    let rig = rig();
    let hv = rig.alice.at(rig.published_seq).expect("retained");
    let frozen = hv.read_design_data(rig.dov).expect("frozen read");
    // A writer hammers the head from another thread while the history
    // view keeps answering; `&self` reads hold no engine lock, so the
    // writer finishes regardless of reader cadence.
    std::thread::scope(|scope| {
        let bob = &rig.bob;
        let writer = scope.spawn(move || {
            for i in 0..50 {
                bob.apply(Op::CreateProject {
                    name: format!("live{i}"),
                })
                .expect("fresh project");
            }
        });
        for _ in 0..200 {
            assert_eq!(hv.read_design_data(rig.dov).expect("stable read"), frozen);
        }
        writer.join().expect("writer thread");
    });
    assert_eq!(hv.seq(), rig.published_seq, "the view never advances");
    assert!(rig.service.snapshot().seq() >= rig.published_seq + 50);
}

// --- branch workspaces --------------------------------------------------

#[test]
fn a_clean_merge_lands_staged_writes_on_the_head() {
    let rig = rig();
    let mut ws = rig
        .alice
        .reserve_at(rig.cv, rig.published_seq)
        .expect("branch");
    assert_eq!(ws.base_seq(), rig.published_seq);
    assert_eq!(ws.user(), rig.alice.user());
    assert_eq!(ws.cv(), rig.cv);
    let object = ws.objects().next().expect("branch point knew the object");
    ws.stage(object, Blob::from(b"netlist v2".to_vec()))
        .expect("stage");
    assert_eq!(ws.staged().collect::<Vec<_>>(), vec![object]);
    let (seq, event) = ws.merge_forward().expect("merge");
    let merged = match event {
        Event::MergeApplied { cv, dovs } => {
            assert_eq!(cv, rig.cv);
            assert_eq!(dovs.len(), 1);
            dovs[0]
        }
        other => panic!("clean merge produced {other:?}"),
    };
    // The merge published, so even bob reads the new version at head.
    assert_eq!(
        rig.bob.read_design_data(merged).expect("published merge"),
        Blob::from(b"netlist v2".to_vec())
    );
    // And read-your-writes: the merge seq answers the same.
    assert_eq!(
        rig.alice
            .at(seq)
            .expect("merge seq retained")
            .read_design_data(merged)
            .expect("visible"),
        Blob::from(b"netlist v2".to_vec())
    );
}

#[test]
fn restaging_an_object_replaces_the_earlier_data() {
    let rig = rig();
    let mut ws = rig
        .alice
        .reserve_at(rig.cv, rig.published_seq)
        .expect("branch");
    let object = ws.objects().next().expect("object");
    ws.stage(object, Blob::from(b"draft".to_vec()))
        .expect("stage");
    ws.stage(object, Blob::from(b"final".to_vec()))
        .expect("restage");
    assert_eq!(ws.staged().count(), 1, "one staged write per object");
    let (_, event) = ws.merge_forward().expect("merge");
    let Event::MergeApplied { dovs, .. } = event else {
        panic!("clean merge expected")
    };
    assert_eq!(
        rig.alice.read_design_data(dovs[0]).expect("merged"),
        Blob::from(b"final".to_vec())
    );
}

#[test]
fn stage_rejects_objects_the_branch_point_never_knew() {
    let rig = rig();
    let mut ws = rig
        .alice
        .reserve_at(rig.cv, rig.published_seq)
        .expect("branch");
    let foreign = DesignObjectId::from_raw(u64::MAX - 7);
    match ws.stage(foreign, Blob::from(b"x".to_vec())).unwrap_err() {
        HybridError::Merge(msg) => assert!(msg.contains("did not exist"), "{msg}"),
        other => panic!("expected Merge, got {other:?}"),
    }
}

#[test]
fn a_moved_head_surfaces_design_object_advanced_and_changes_nothing() {
    let rig = rig();
    let mut ws = rig
        .alice
        .reserve_at(rig.cv, rig.published_seq)
        .expect("branch");
    let object = ws.objects().next().expect("object");
    ws.stage(object, Blob::from(b"branch work".to_vec()))
        .expect("stage");
    // Meanwhile the head moves: alice herself advances the same design
    // object through the live path and publishes.
    rig.alice.reserve(rig.cv).expect("live reserve");
    rig.alice
        .run_activity(
            rig.variant,
            rig.flow.enter_schematic,
            false,
            vec![ToolOutput {
                viewtype: "schematic".into(),
                data: Blob::from(b"live v2".to_vec()),
            }],
            None,
        )
        .expect("live activity");
    rig.alice.publish(rig.cv).expect("live publish");
    let versions_before = rig
        .alice
        .snapshot()
        .jcf()
        .versions_of_design_object(object)
        .len();
    let (seq, event) = ws.merge_forward().expect("conflicts commit as events");
    match event {
        Event::MergeConflict { cv, conflicts } => {
            assert_eq!(cv, rig.cv);
            assert_eq!(
                conflicts,
                vec![MergeConflict::DesignObjectAdvanced {
                    design_object: object,
                    expected: 1,
                    found: 2,
                }]
            );
        }
        other => panic!("expected a conflict, got {other:?}"),
    }
    assert!(seq > 0);
    // No state change: the conflict landed as an event only.
    let versions_after = rig
        .alice
        .snapshot()
        .jcf()
        .versions_of_design_object(object)
        .len();
    assert_eq!(versions_after, versions_before, "conflict wrote nothing");
}

#[test]
fn a_held_reservation_surfaces_reserved_by_other() {
    let rig = rig();
    let mut ws = rig
        .alice
        .reserve_at(rig.cv, rig.published_seq)
        .expect("branch");
    let object = ws.objects().next().expect("object");
    ws.stage(object, Blob::from(b"branch work".to_vec()))
        .expect("stage");
    rig.bob.reserve(rig.cv).expect("bob takes the head");
    let (_, event) = ws.merge_forward().expect("conflicts commit as events");
    match event {
        Event::MergeConflict { conflicts, .. } => {
            assert_eq!(
                conflicts,
                vec![MergeConflict::ReservedByOther {
                    holder: rig.bob.user()
                }]
            );
        }
        other => panic!("expected a conflict, got {other:?}"),
    }
}

// --- impact queries -----------------------------------------------------

/// Two coupled cells with one published dov each, marked equivalent at
/// a recorded seq: the minimal derivation/equivalence graph where the
/// impact answer flips between two retained snapshots.
fn impact_rig() -> (HistoryRig, DovId, u64, u64) {
    let rig = rig();
    let admin = rig.service.open_session(rig.service.admin());
    let project = admin.create_project("filter").expect("project");
    let cell = admin.create_cell(project, "fir").expect("cell");
    let (cv2, variant2) = admin
        .create_cell_version(cell, rig.flow.flow, rig.team)
        .expect("cell version");
    let _ = cv2;
    rig.bob.reserve(cv2).expect("reserve");
    let dovs = rig
        .bob
        .run_activity(
            variant2,
            rig.flow.enter_schematic,
            false,
            vec![ToolOutput {
                viewtype: "schematic".into(),
                data: Blob::from(b"fir netlist".to_vec()),
            }],
            None,
        )
        .expect("activity");
    rig.bob.publish(cv2).expect("publish");
    let before_seq = rig.service.snapshot().seq();
    let (mark_seq, _) = rig
        .bob
        .apply_seq(Op::MarkEquivalent {
            a: rig.dov,
            b: dovs[0],
        })
        .expect("mark equivalent");
    (rig, dovs[0], before_seq, mark_seq)
}

#[test]
fn impact_queries_answer_on_any_retained_snapshot() {
    let (rig, other_dov, before_seq, mark_seq) = impact_rig();
    // Before the equivalence mark, changing rig.cv impacts nothing.
    let before = rig.alice.at(before_seq).expect("retained");
    assert_eq!(before.stale_dovs(rig.cv), Vec::<DovId>::new());
    assert!(before.impacted_cellviews(rig.cv).is_empty());
    // From the mark on, the other cell's dov goes stale — with its
    // FMCAD mirror coordinates, since the activity mirrored it.
    let after = rig.alice.at(mark_seq).expect("retained");
    assert_eq!(after.stale_dovs(rig.cv), vec![other_dov]);
    let impacted = after.impacted_cellviews(rig.cv);
    assert_eq!(impacted.len(), 1);
    let (dov, mirror) = &impacted[0];
    assert_eq!(*dov, other_dov);
    assert_eq!(mirror.library, "filter");
    assert_eq!(mirror.view, "schematic");
    // The historical answer matches the live snapshot's at equal seq.
    assert_eq!(
        rig.alice.snapshot().stale_dovs(rig.cv),
        after.stale_dovs(rig.cv),
        "head still answers identically (nothing changed since)"
    );
}

// --- sharded determinism ------------------------------------------------

/// Runs the full branch/merge scenario — clean merge, advanced-object
/// conflict, held-reservation conflict — on a sharded service and
/// renders every outcome. The transcript must not depend on the shard
/// count.
fn sharded_merge_transcript(shards: usize) -> Vec<String> {
    let service = ShardedService::builder()
        .shards(shards)
        .retention(RetentionPolicy::LastN(256))
        .build();
    let admin = service.open_session(service.admin());
    let alice_id = admin.add_user("alice", false).expect("alice");
    let bob_id = admin.add_user("bob", false).expect("bob");
    let team = admin.add_team("asic").expect("team");
    admin.add_team_member(team, alice_id).expect("alice joins");
    admin.add_team_member(team, bob_id).expect("bob joins");
    let flow = admin.standard_flow("asic").expect("flow");
    let alice = service.open_session(alice_id);
    let bob = service.open_session(bob_id);
    let mut transcript = Vec::new();
    // Three projects so successive cells spread across partitions.
    for (i, name) in ["alu16", "filter", "uart"].iter().enumerate() {
        let project = admin.create_project(name).expect("project");
        let cell = admin.create_cell(project, "top").expect("cell");
        let (cv, variant) = admin
            .create_cell_version(cell, flow.flow, team)
            .expect("cell version");
        alice.reserve(cv).expect("reserve");
        alice
            .run_activity(
                variant,
                flow.enter_schematic,
                false,
                vec![("schematic".into(), Blob::from(format!("netlist {i}")))],
            )
            .expect("activity");
        let base_seq = alice.publish(cv).expect("publish");
        let mut ws = alice.reserve_at(cv, base_seq).expect("branch");
        let object = ws.objects().next().expect("object");
        ws.stage(object, Blob::from(format!("branch {i}")))
            .expect("stage");
        match i {
            // Scenario 0: clean merge.
            0 => {}
            // Scenario 1: the object advances underneath the branch.
            1 => {
                alice.reserve(cv).expect("live reserve");
                alice
                    .run_activity(
                        variant,
                        flow.enter_schematic,
                        false,
                        vec![("schematic".into(), Blob::from(b"live v2".to_vec()))],
                    )
                    .expect("live activity");
                alice.publish(cv).expect("live publish");
            }
            // Scenario 2: bob holds the reservation at merge time.
            _ => {
                bob.reserve(cv).expect("bob reserves");
            }
        }
        let (seq, event) = ws.merge_forward().expect("merge commits");
        transcript.push(format!("{seq}|{event:?}"));
    }
    transcript
}

#[test]
fn merge_outcomes_are_identical_at_every_shard_count() {
    let reference = sharded_merge_transcript(1);
    assert!(
        reference[0].contains("MergeApplied"),
        "scenario 0 merges cleanly: {}",
        reference[0]
    );
    assert!(
        reference[1].contains("DesignObjectAdvanced"),
        "scenario 1 conflicts on the advanced object: {}",
        reference[1]
    );
    assert!(
        reference[2].contains("ReservedByOther"),
        "scenario 2 conflicts on the held reservation: {}",
        reference[2]
    );
    for shards in [2usize, 4] {
        assert_eq!(
            sharded_merge_transcript(shards),
            reference,
            "{shards}-shard merge transcript diverged"
        );
    }
}

#[test]
fn sharded_time_travel_reads_the_past() {
    let service = ShardedService::builder()
        .shards(3)
        .retention(RetentionPolicy::LastN(256))
        .build();
    let admin = service.open_session(service.admin());
    let alice_id = admin.add_user("alice", false).expect("alice");
    let bob_id = admin.add_user("bob", false).expect("bob");
    let team = admin.add_team("asic").expect("team");
    admin.add_team_member(team, alice_id).expect("alice joins");
    admin.add_team_member(team, bob_id).expect("bob joins");
    let flow = admin.standard_flow("asic").expect("flow");
    let project = admin.create_project("alu16").expect("project");
    let cell = admin.create_cell(project, "adder").expect("cell");
    let (cv, variant) = admin
        .create_cell_version(cell, flow.flow, team)
        .expect("cell version");
    let alice = service.open_session(alice_id);
    let bob = service.open_session(bob_id);
    alice.reserve(cv).expect("reserve");
    let dovs = alice
        .run_activity(
            variant,
            flow.enter_schematic,
            false,
            vec![("schematic".into(), Blob::from(b"netlist v1".to_vec()))],
        )
        .expect("activity");
    let published_seq = alice.publish(cv).expect("publish");
    let staged_seq = published_seq - 1;
    // Bob travels: invisible before the publish, visible after.
    let before = bob.at(staged_seq).expect("retained");
    assert!(before.read_design_data(dovs[0]).is_err());
    let after = bob.at(published_seq).expect("retained");
    assert_eq!(
        after.read_design_data(dovs[0]).expect("published"),
        Blob::from(b"netlist v1".to_vec())
    );
    // Typed misses name a boundary, exactly like the single engine.
    assert!(matches!(
        bob.at(published_seq + 50_000).unwrap_err(),
        HybridError::SeqUnreachable { .. }
    ));
    // Impact queries run on retained sharded views too.
    assert_eq!(
        after.stale_dovs(cv).expect("resolvable cv"),
        Vec::<DovId>::new()
    );
    assert!(after.impacted_cellviews(cv).expect("resolvable").is_empty());
}

// --- the wire surface ---------------------------------------------------

/// Binds a server over the rig's service and returns connected
/// sessions for alice and bob.
fn wire_pair(rig: &HistoryRig) -> (Server, Client, Client) {
    let server =
        Server::bind("127.0.0.1:0", ServerConfig::default(), rig.service.clone()).expect("bind");
    let addr = server.local_addr();
    let alice = Client::connect(addr, "alice").expect("alice connects");
    let bob = Client::connect(addr, "bob").expect("bob connects");
    (server, alice, bob)
}

#[test]
fn history_crosses_the_wire_scoped_to_the_session_user() {
    let rig = rig();
    let (server, mut alice, mut bob) = wire_pair(&rig);
    // retained: the wire answer equals the in-process ring.
    assert_eq!(
        alice.history_retained().expect("retained over the wire"),
        rig.service.retained_seqs()
    );
    // history-read at the pre-publish seq: the dov was visible to its
    // holder only, and the server binds each session to its
    // authenticated user — bob gets the typed rejection.
    let bytes = alice
        .history_read(rig.staged_seq, rig.dov.raw())
        .expect("holder reads the past");
    assert_eq!(bytes, b"netlist v1");
    match bob.history_read(rig.staged_seq, rig.dov.raw()) {
        Err(WireError::Rejected { code, .. }) => {
            assert_eq!(code, "jcf", "bob is not the holder")
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    // After the publish both read.
    assert_eq!(
        bob.history_read(rig.published_seq, rig.dov.raw())
            .expect("published"),
        b"netlist v1"
    );
    // An unretained seq is the typed seq-unreachable rejection.
    match alice.history_read(9_999_999, rig.dov.raw()) {
        Err(WireError::Rejected { code, .. }) => assert_eq!(code, "seq-unreachable"),
        other => panic!("expected seq-unreachable, got {other:?}"),
    }
    // History requests execute no ops.
    let stats = server.stats();
    assert_eq!(stats.ops_ok, 0, "history reads execute no ops");
    assert_eq!(stats.history_queries, 5);
    alice.bye().expect("clean goodbye");
    bob.bye().expect("clean goodbye");
}

#[test]
fn impact_queries_cross_the_wire() {
    let (rig, other_dov, before_seq, mark_seq) = impact_rig();
    let (_server, mut alice, _bob) = wire_pair(&rig);
    let (stale, impacted) = alice
        .history_impact(before_seq, rig.cv.raw())
        .expect("impact before the mark");
    assert!(stale.is_empty() && impacted.is_empty());
    let (stale, impacted) = alice
        .history_impact(mark_seq, rig.cv.raw())
        .expect("impact after the mark");
    assert_eq!(stale, vec![other_dov.raw()]);
    assert_eq!(impacted.len(), 1);
    assert_eq!(impacted[0].dov, other_dov.raw());
    assert_eq!(impacted[0].library, "filter");
    assert_eq!(impacted[0].view, "schematic");
}

#[test]
fn the_sharded_backend_answers_history_identically() {
    let service = ShardedService::builder()
        .shards(3)
        .retention(RetentionPolicy::LastN(64))
        .build();
    let admin = service.open_session(service.admin());
    let alice_id = admin.add_user("alice", false).expect("alice");
    let team = admin.add_team("asic").expect("team");
    admin.add_team_member(team, alice_id).expect("alice joins");
    let flow = admin.standard_flow("asic").expect("flow");
    let project = admin.create_project("alu16").expect("project");
    let cell = admin.create_cell(project, "adder").expect("cell");
    let (cv, variant) = admin
        .create_cell_version(cell, flow.flow, team)
        .expect("cell version");
    let alice = service.open_session(alice_id);
    alice.reserve(cv).expect("reserve");
    let dovs = alice
        .run_activity(
            variant,
            flow.enter_schematic,
            false,
            vec![("schematic".into(), Blob::from(b"netlist v1".to_vec()))],
        )
        .expect("activity");
    let published_seq = alice.publish(cv).expect("publish");
    let server =
        Server::bind("127.0.0.1:0", ServerConfig::default(), service.clone()).expect("bind");
    let mut client = Client::connect(server.local_addr(), "alice").expect("connect");
    assert_eq!(
        client.history_retained().expect("retained"),
        service.retained_seqs()
    );
    assert_eq!(
        client
            .history_read(published_seq, dovs[0].raw())
            .expect("read the sharded past"),
        b"netlist v1"
    );
    let (stale, impacted) = client
        .history_impact(published_seq, cv.raw())
        .expect("sharded impact");
    assert!(stale.is_empty() && impacted.is_empty());
    client.bye().expect("clean goodbye");
}

// --- retired API surface ------------------------------------------------

/// The 0.9.0 cleanup is total: the deprecated post-hoc setters and the
/// `kind()` alias are gone from the public surface, and the journaled
/// op variants they left behind replay without them.
#[test]
fn retired_setter_ops_replay_without_their_methods() {
    let mut en = Engine::new();
    en.apply(Op::SetStagingMode {
        mode: hybrid::StagingMode::DeepCopy,
    })
    .expect("replay-only op applies");
    assert_eq!(en.staging_mode(), hybrid::StagingMode::DeepCopy);
    let _: UserId = en.admin();
}
