//! Protocol fault battery: hostile bytes against a live server.
//!
//! SplitMix64-driven torn frames, oversized length prefixes, version
//! skew, non-UTF-8 payloads, mid-frame disconnects and random garbage
//! — under all of it the server must answer with a typed terminal
//! `err` frame or close cleanly, never panic, and the engine behind
//! it must stay byte-identical to one that never saw the storm.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use jcf_fmcad::cad_net::{
    read_frame, write_frame, Client, Response, Server, ServerConfig, WireError, MAX_FRAME,
};
use jcf_fmcad::hybrid::{Engine, Op, Service};
use test_support::SplitMix64;

const ADMIN: &str = "framework-admin";

/// A tight-timeout server so fault cases resolve quickly.
fn serve(service: Service) -> Server {
    let config = ServerConfig {
        handshake_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", config, service).expect("bind")
}

fn raw_connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
}

/// Reads one frame and insists it is a typed terminal `err`; a clean
/// or torn close is also acceptable (the peer may be gone before the
/// error frame drains).
fn expect_err_or_close(stream: &mut TcpStream, context: &str) {
    match read_frame(stream, MAX_FRAME) {
        Ok(payload) => match Response::parse(&payload) {
            Ok(Response::Err { code, .. }) => {
                assert!(
                    [
                        "proto",
                        "version",
                        "auth",
                        "oversized",
                        "timeout",
                        "capacity",
                        "internal"
                    ]
                    .contains(&code.as_str()),
                    "{context}: unknown terminal code {code:?}"
                );
            }
            Ok(other) => panic!("{context}: expected err frame, got {other:?}"),
            Err(e) => panic!("{context}: server sent unparseable frame: {e}"),
        },
        Err(WireError::Closed) | Err(WireError::Torn { .. }) | Err(WireError::Io(_)) => {}
        Err(e) => panic!("{context}: unexpected read failure: {e}"),
    }
}

/// After whatever storm ran, the server must still complete a healthy
/// handshake and commit an op.
fn assert_still_serving(server: &Server, tag: &str) {
    let mut client = Client::connect(server.local_addr(), ADMIN).expect("healthy handshake");
    client.ping().expect("healthy ping");
    client
        .submit_ok(&Op::CreateProject {
            name: format!("post-storm-{tag}"),
        })
        .expect("healthy commit");
}

/// Fingerprint comparison against a twin control engine that never
/// saw the storm — computed once per instance, because the walk
/// itself charges the engine's cost meter.
fn assert_untouched(stormed: &Service, control: &Service, context: &str) {
    let stormed_fp = stormed.with_engine(|e| e.state_fingerprint().unwrap());
    let control_fp = control.with_engine(|e| e.state_fingerprint().unwrap());
    assert_eq!(
        stormed_fp, control_fp,
        "{context}: hostile bytes must not perturb the engine"
    );
}

#[test]
fn torn_frames_and_mid_frame_disconnects_never_panic_the_server() {
    let service = Service::new(Engine::builder().build());
    let control = Service::new(Engine::builder().build());
    let mut server = serve(service.clone());

    let mut rng = SplitMix64::new(0xbad_f00d);
    for round in 0..24 {
        let mut stream = raw_connect(&server);
        // A valid hello, so some rounds get past the handshake...
        if rng.chance(1, 2) {
            write_frame(
                &mut stream,
                "hello|version=1|user=6672616d65776f726b2d61646d696e",
            )
            .expect("hello");
            let _ = read_frame(&mut stream, MAX_FRAME).expect("welcome");
        }
        // ...then a frame that dies mid-payload.
        let announced = 16 + rng.below(512);
        let sent = rng.below(announced);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(announced as u32).to_be_bytes());
        bytes.extend((0..sent).map(|_| (rng.next_u64() & 0xff) as u8));
        stream.write_all(&bytes).expect("partial frame");
        drop(stream); // mid-frame disconnect
        let _ = round;
    }

    // Torn header bytes too: fewer than 4 length bytes then close.
    for n in 0..4 {
        let mut stream = raw_connect(&server);
        stream.write_all(&vec![0x01; n]).expect("torn header");
        drop(stream);
    }

    // The engine never saw a valid op: fingerprint must be untouched,
    // and no connection thread may have panicked.
    wait_for_drain(&server);
    assert_untouched(&service, &control, "torn frames");
    assert_eq!(server.stats().panics, 0);
    assert_still_serving(&server, "torn");
    server.shutdown();
}

#[test]
fn oversized_length_prefixes_are_rejected_without_allocation() {
    let service = Service::new(Engine::builder().build());
    let control = Service::new(Engine::builder().build());
    let mut server = serve(service.clone());

    for len in [MAX_FRAME as u32 + 1, u32::MAX / 2, u32::MAX] {
        let mut stream = raw_connect(&server);
        stream
            .write_all(&len.to_be_bytes())
            .expect("hostile length");
        // The server must answer (or close) without ever reading the
        // announced payload — which we never send.
        expect_err_or_close(&mut stream, &format!("oversized len {len}"));
    }

    wait_for_drain(&server);
    assert_untouched(&service, &control, "oversized prefixes");
    assert_eq!(server.stats().panics, 0);
    assert_still_serving(&server, "oversized");
    server.shutdown();
}

#[test]
fn version_skew_bad_users_and_malformed_hellos_get_typed_rejections() {
    let service = Service::new(Engine::builder().build());
    let mut server = serve(service);

    let cases: &[&str] = &[
        "hello|version=2|user=6672616d65776f726b2d61646d696e", // future version
        "hello|version=0|user=6672616d65776f726b2d61646d696e", // ancient version
        "hello|version=1|user=6e6f626f6479",                   // unknown user
        "hello|version=1|user=zz",                             // bad hex
        "hello|version=banana|user=61",                        // bad number
        "hello|version=1",                                     // missing field
        "op|id=1|op=6164642d75736572",                         // op before hello
        "ping|id=1",                                           // ping before hello
        "definitely-not-a-message",
        "",
        "|||",
        "=|=",
    ];
    for payload in cases {
        let mut stream = raw_connect(&server);
        write_frame(&mut stream, payload).expect("send");
        expect_err_or_close(&mut stream, &format!("hello case {payload:?}"));
    }

    // Non-UTF-8 payload bytes in an otherwise well-framed message.
    let mut stream = raw_connect(&server);
    let garbage = [0xffu8, 0xfe, 0x80, 0x81, 0x00];
    let mut frame = Vec::new();
    frame.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
    frame.extend_from_slice(&garbage);
    stream.write_all(&frame).expect("send");
    expect_err_or_close(&mut stream, "non-utf8 payload");

    wait_for_drain(&server);
    assert_eq!(server.stats().panics, 0);
    assert!(server.stats().protocol_errors > 0);
    assert_still_serving(&server, "hello");
    server.shutdown();
}

#[test]
fn random_garbage_after_a_valid_handshake_is_contained() {
    let service = Service::new(Engine::builder().build());
    let control = Service::new(Engine::builder().build());
    let mut server = serve(service.clone());

    // Seed the engine (and its control twin) with one real op so the
    // storm runs against non-trivial state.
    {
        let seed_op = Op::CreateProject {
            name: "pre-storm".into(),
        };
        let mut client = Client::connect(server.local_addr(), ADMIN).expect("connect");
        client.submit_ok(&seed_op).expect("seed commit");
        control.submit(seed_op).expect("control seed commit");
    }

    let mut rng = SplitMix64::new(0x5eed);
    for _ in 0..24 {
        let mut stream = raw_connect(&server);
        write_frame(
            &mut stream,
            "hello|version=1|user=6672616d65776f726b2d61646d696e",
        )
        .expect("hello");
        let _ = read_frame(&mut stream, MAX_FRAME).expect("welcome");
        // Well-framed random garbage payloads: parse errors, not
        // transport errors, so each must produce a typed terminal err.
        let len = 1 + rng.below(64);
        let payload: String = (0..len)
            .map(|_| {
                // Printable-ish ASCII with separators over-represented.
                let c = (0x20 + (rng.next_u64() % 0x5f) as u8) as char;
                if rng.chance(1, 4) {
                    ['|', '=', ';', ':', ','][rng.below(5)]
                } else {
                    c
                }
            })
            .collect();
        write_frame(&mut stream, &payload).expect("garbage");
        expect_err_or_close(&mut stream, &format!("garbage {payload:?}"));
    }

    // Double hello: a second handshake on a live session is a
    // protocol error.
    let mut stream = raw_connect(&server);
    write_frame(
        &mut stream,
        "hello|version=1|user=6672616d65776f726b2d61646d696e",
    )
    .expect("hello");
    let _ = read_frame(&mut stream, MAX_FRAME).expect("welcome");
    write_frame(
        &mut stream,
        "hello|version=1|user=6672616d65776f726b2d61646d696e",
    )
    .expect("second hello");
    expect_err_or_close(&mut stream, "double hello");

    wait_for_drain(&server);
    assert_untouched(&service, &control, "post-handshake garbage");
    assert_eq!(server.stats().panics, 0);
    assert_still_serving(&server, "garbage");
    server.shutdown();
}

#[test]
fn an_op_with_a_malformed_embedded_line_is_a_protocol_error_not_a_crash() {
    let service = Service::new(Engine::builder().build());
    let control = Service::new(Engine::builder().build());
    let mut server = serve(service.clone());

    // Hex-armoured garbage in the op field: armour decodes, the op
    // line inside does not parse.
    let bad_ops = [
        "op|id=1|op=zz",                   // broken armour
        "op|id=1|op=6e6f2d737563682d6f70", // "no-such-op"
        "op|id=1|op=",                     // empty armour
        "op|id=1",                         // missing op field
        "op|op=61",                        // missing id
        "op|id=banana|op=61",              // bad id
    ];
    for payload in bad_ops {
        let mut stream = raw_connect(&server);
        write_frame(
            &mut stream,
            "hello|version=1|user=6672616d65776f726b2d61646d696e",
        )
        .expect("hello");
        let _ = read_frame(&mut stream, MAX_FRAME).expect("welcome");
        write_frame(&mut stream, payload).expect("bad op");
        expect_err_or_close(&mut stream, payload);
    }

    wait_for_drain(&server);
    assert_untouched(&service, &control, "malformed embedded ops");
    assert_eq!(server.stats().panics, 0);
    assert_still_serving(&server, "bad-op");
    server.shutdown();
}

#[test]
fn slamming_the_door_during_every_phase_leaves_no_debris() {
    let service = Service::new(Engine::builder().build());
    let mut server = serve(service);

    // Disconnect at every interesting moment of a session's life.
    // Phase 0: connect, say nothing, vanish.
    drop(raw_connect(&server));
    // Phase 1: half a length header.
    let mut s = raw_connect(&server);
    s.write_all(&[0, 0]).expect("half header");
    drop(s);
    // Phase 2: full hello announced, half sent.
    let mut s = raw_connect(&server);
    let hello = "hello|version=1|user=6672616d65776f726b2d61646d696e";
    s.write_all(&(hello.len() as u32).to_be_bytes())
        .expect("header");
    s.write_all(&hello.as_bytes()[..hello.len() / 2])
        .expect("half hello");
    drop(s);
    // Phase 3: full handshake, vanish without bye.
    let mut s = raw_connect(&server);
    write_frame(&mut s, hello).expect("hello");
    let _ = read_frame(&mut s, MAX_FRAME).expect("welcome");
    drop(s);
    // Phase 4: op announced, half sent, vanish.
    let mut s = raw_connect(&server);
    write_frame(&mut s, hello).expect("hello");
    let _ = read_frame(&mut s, MAX_FRAME).expect("welcome");
    let op_frame = "op|id=1|op=6164642d75736572";
    s.write_all(&(op_frame.len() as u32).to_be_bytes())
        .expect("header");
    s.write_all(&op_frame.as_bytes()[..5]).expect("half op");
    drop(s);

    wait_for_drain(&server);
    assert_eq!(server.stats().panics, 0);
    assert_still_serving(&server, "door-slam");
    server.shutdown();
}

/// Waits until the server has no active connections (all fault
/// threads unwound), bounded by a deadline.
fn wait_for_drain(server: &Server) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().active > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "connections failed to drain: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
