//! Backpressure battery: saturation, slow readers and flooders get
//! *bounded* typed behaviour while healthy sessions keep committing.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use jcf_fmcad::cad_net::{Client, Outcome, Server, ServerConfig};
use jcf_fmcad::cad_vfs::Blob;
use jcf_fmcad::hybrid::{Engine, Event, Op, Service};

const ADMIN: &str = "framework-admin";

fn connect(server: &Server, user: &str) -> Client {
    Client::connect(server.local_addr(), user).expect("connect and handshake")
}

/// Holding the engine lock while writers pile up must trip the `busy`
/// threshold: ops past it get a typed `busy` answer *without being
/// executed*, pings stay live, and once the engine frees up both the
/// parked writers and a retry of the rejected op commit.
#[test]
fn saturated_write_path_answers_busy_without_executing() {
    let service = Service::new(Engine::builder().build());
    let config = ServerConfig {
        busy_threshold: 4,
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", config, service.clone()).expect("bind");

    // Park the engine: the closure holds the engine lock until told
    // to release, so submitted ops pile up in the pending queue.
    let (ready_tx, ready_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let parked = {
        let service = service.clone();
        std::thread::spawn(move || {
            service.with_engine(|_| {
                ready_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        })
    };
    ready_rx.recv().unwrap();

    // Eight in-process writers block behind the held engine (the
    // direct path has no busy gate, so the queue reliably reaches 8).
    let writers: Vec<_> = (0..8)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                service.submit(Op::CreateProject {
                    name: format!("parked-{i}"),
                })
            })
        })
        .collect();

    // Wait until all eight ops are visibly queued.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.queue_depth() < 8 {
        assert!(
            Instant::now() < deadline,
            "writers never queued: depth {}",
            service.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // A ninth op must be answered `busy` — typed, immediate, not
    // executed — and a ping on the same saturated server stays live.
    let mut probe = connect(&server, ADMIN);
    let outcome = probe
        .submit(&Op::CreateProject {
            name: "rejected-for-now".into(),
        })
        .expect("typed reply despite saturation");
    let depth = match outcome {
        Outcome::Busy { depth } => depth,
        other => panic!("expected busy, got {other:?}"),
    };
    assert!(depth >= 4, "busy must report the observed depth");
    probe.ping().expect("ping stays live under saturation");

    // Release the engine: every parked writer commits.
    release_tx.send(()).unwrap();
    parked.join().unwrap();
    for writer in writers {
        writer.join().unwrap().expect("parked writer should commit");
    }

    // The rejected op was never executed — retrying it now succeeds
    // (no duplicate-name error) and the engine drained.
    match probe
        .submit(&Op::CreateProject {
            name: "rejected-for-now".into(),
        })
        .expect("typed reply")
    {
        Outcome::Committed { .. } => {}
        other => panic!("retry after busy should commit, got {other:?}"),
    }
    assert_eq!(service.queue_depth(), 0);

    let stats = server.stats();
    assert!(stats.busy >= 1, "busy answers must be counted");
    assert_eq!(stats.panics, 0);
    server.shutdown();
}

/// A client that stops draining large responses is disconnected by
/// the write timeout instead of wedging an executor forever — and a
/// healthy session on the same server keeps committing throughout.
#[test]
fn slow_readers_are_dropped_by_the_write_timeout() {
    let service = Service::new(Engine::builder().build());
    let config = ServerConfig {
        write_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", config, service).expect("bind");

    // Desktop setup over the wire: alice owns a design object version
    // with a payload large enough that a handful of browse responses
    // overflow any socket buffer.
    let mut admin = connect(&server, ADMIN);
    let admin_user = admin.user();
    let alice = match admin
        .submit_ok(&Op::AddUser {
            name: "alice".into(),
            manager: false,
        })
        .unwrap()
    {
        (_, Event::UserAdded(id)) => id,
        (_, other) => panic!("expected user-added, got {other:?}"),
    };
    let team = match admin
        .submit_ok(&Op::AddTeam {
            actor: admin_user,
            name: "asic".into(),
        })
        .unwrap()
    {
        (_, Event::TeamAdded(id)) => id,
        (_, other) => panic!("expected team-added, got {other:?}"),
    };
    admin
        .submit_ok(&Op::AddTeamMember {
            actor: admin_user,
            team,
            user: alice,
        })
        .unwrap();
    let flow = match admin
        .submit_ok(&Op::DefineStandardFlow {
            name: "flow".into(),
        })
        .unwrap()
    {
        (_, Event::StandardFlowDefined(flow)) => flow,
        (_, other) => panic!("expected standard-flow-defined, got {other:?}"),
    };
    let project = match admin
        .submit_ok(&Op::CreateProject {
            name: "alu16".into(),
        })
        .unwrap()
    {
        (_, Event::ProjectCreated(id)) => id,
        (_, other) => panic!("expected project-created, got {other:?}"),
    };
    let cell = match admin
        .submit_ok(&Op::CreateCell {
            project,
            name: "adder".into(),
        })
        .unwrap()
    {
        (_, Event::CellCreated(id)) => id,
        (_, other) => panic!("expected cell-created, got {other:?}"),
    };
    let (cv, variant) = match admin
        .submit_ok(&Op::CreateCellVersion {
            cell,
            flow: flow.flow,
            team,
        })
        .unwrap()
    {
        (_, Event::CellVersionCreated(cv, v)) => (cv, v),
        (_, other) => panic!("expected cell-version-created, got {other:?}"),
    };

    let mut alice_client = connect(&server, "alice");
    alice_client
        .submit_ok(&Op::Reserve { user: alice, cv })
        .unwrap();
    let payload: Blob = vec![0xabu8; 512 * 1024].into();
    let dovs = match alice_client
        .submit_ok(&Op::RunActivity {
            user: alice,
            variant,
            activity: flow.enter_schematic,
            override_pending: false,
            outputs: vec![("schematic".into(), payload)],
            session_error: None,
        })
        .unwrap()
    {
        (_, Event::ActivityRun { dovs }) => dovs,
        (_, other) => panic!("expected activity-run, got {other:?}"),
    };
    let dov = dovs[0];

    // The slow reader pipelines browses (each reply ~1 MiB of hex)
    // and never reads a byte back.
    let browse = Op::Browse { user: alice, dov };
    for _ in 0..32 {
        if alice_client.send_op(&browse).is_err() {
            // The server already dropped us mid-flood; also fine.
            break;
        }
    }

    // While the slow reader wedges, a healthy session keeps working.
    let healthy_deadline = Instant::now() + Duration::from_secs(15);
    let mut dropped = false;
    let mut healthy_commits = 0;
    while Instant::now() < healthy_deadline {
        admin
            .submit_ok(&Op::CreateProject {
                name: format!("healthy-{healthy_commits}"),
            })
            .expect("healthy session must keep committing");
        healthy_commits += 1;
        if server.stats().timeouts >= 1 {
            dropped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        dropped,
        "slow reader was never dropped; stats: {:?}",
        server.stats()
    );
    assert!(healthy_commits >= 1);
    assert_eq!(server.stats().panics, 0);
    server.shutdown();
}

/// A flooder pipelining far past the inflight window only slows
/// *itself*: replies come back complete and in order, and concurrent
/// healthy sessions see their own writes immediately.
#[test]
fn a_pipelining_flooder_is_window_bounded_and_healthy_sessions_read_their_writes() {
    let service = Service::new(Engine::builder().build());
    let config = ServerConfig {
        inflight_window: 4,
        ..ServerConfig::default()
    };
    let mut server = Server::bind("127.0.0.1:0", config, service).expect("bind");

    const FLOOD: u64 = 400;
    let flooder = {
        let addr = server.local_addr();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, ADMIN).expect("connect");
            // Cheap failing ops (unknown project id): the server must
            // execute and answer every one, in order, despite the
            // flood being far deeper than the window.
            let op = Op::CreateCell {
                project: jcf_fmcad::jcf::ProjectId::from_raw(u64::MAX),
                name: "flood".into(),
            };
            let mut ids = Vec::new();
            for _ in 0..FLOOD {
                ids.push(client.send_op(&op).expect("send"));
            }
            for want in ids {
                let reply = client.recv_reply().expect("reply");
                assert_eq!(reply.id, want, "flood replies must stay in order");
                assert!(matches!(reply.outcome, Outcome::Failed { .. }));
            }
            client.bye().expect("clean goodbye after flood");
        })
    };

    // Meanwhile: a healthy session interleaves writes and must see
    // each one immediately (read-your-writes across the wire).
    let mut healthy = connect(&server, ADMIN);
    for i in 0..20 {
        let project = match healthy
            .submit_ok(&Op::CreateProject {
                name: format!("rw-{i}"),
            })
            .expect("healthy create project")
        {
            (_, Event::ProjectCreated(id)) => id,
            (_, other) => panic!("expected project-created, got {other:?}"),
        };
        // The id from the event is immediately usable by the same
        // session: the write is visible to its own follow-up op.
        match healthy
            .submit_ok(&Op::CreateCell {
                project,
                name: format!("cell-{i}"),
            })
            .expect("healthy create cell")
        {
            (_, Event::CellCreated(_)) => {}
            (_, other) => panic!("expected cell-created, got {other:?}"),
        }
    }

    flooder.join().expect("flooder thread");
    let stats = server.stats();
    assert_eq!(stats.panics, 0);
    assert_eq!(
        stats.ops_failed, FLOOD,
        "every flooded op got a typed answer"
    );
    assert_eq!(stats.ops_ok, 40, "healthy commits all landed");
    server.shutdown();
}
