//! Protocol conformance suite: every op variant crosses a real TCP
//! socket and the wire-backed engine stays byte-identical to an
//! in-process one driven with the same schedule.
//!
//! The exhaustiveness guard mirrors `op_codec_adversarial.rs`: the
//! wildcard-free match below fails compilation when the op vocabulary
//! grows, forcing this suite to cover the new variant's wire path too.

use jcf_fmcad::cad_net::{Client, Outcome, Server, ServerConfig};
use jcf_fmcad::cad_tools::ToolKind;
use jcf_fmcad::cad_vfs::Blob;
use jcf_fmcad::hybrid::{
    Engine, Event, FutureFeatures, Op, Service, ShardedServiceBuilder, StagingMode,
};
use jcf_fmcad::jcf::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId, FlowId,
    ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};

/// The built-in administrator's desktop name.
const ADMIN: &str = "framework-admin";

fn serve(service: Service) -> Server {
    Server::bind("127.0.0.1:0", ServerConfig::default(), service).expect("bind an ephemeral port")
}

fn connect(server: &Server, user: &str) -> Client {
    Client::connect(server.local_addr(), user).expect("connect and handshake")
}

/// Compile-time exhaustiveness guard: no wildcard arm, so adding an
/// `Op` variant fails compilation here until `wire_samples` covers
/// its wire path too.
fn assert_sampled(op: &Op) {
    match op {
        Op::AddUser { .. }
        | Op::AddTeam { .. }
        | Op::AddTeamMember { .. }
        | Op::RegisterViewtype { .. }
        | Op::RegisterTool { .. }
        | Op::DefineStandardFlow { .. }
        | Op::DefineQualityGatedFlow { .. }
        | Op::DefineFlow { .. }
        | Op::AddActivity { .. }
        | Op::FreezeFlow { .. }
        | Op::CreateProject { .. }
        | Op::CreateCell { .. }
        | Op::CreateCellVersion { .. }
        | Op::DeriveVariant { .. }
        | Op::DeclareCompOf { .. }
        | Op::ShareCell { .. }
        | Op::PromoteVariant { .. }
        | Op::Reserve { .. }
        | Op::Publish { .. }
        | Op::CreateDesignObject { .. }
        | Op::AddDesignObjectVersion { .. }
        | Op::MarkEquivalent { .. }
        | Op::MergeForward { .. }
        | Op::RunActivity { .. }
        | Op::Browse { .. }
        | Op::ReadDesignData { .. }
        | Op::CreateConfiguration { .. }
        | Op::CreateConfigVersion { .. }
        | Op::ExportConfig { .. }
        | Op::RunLvs { .. }
        | Op::SetFutureFeatures { .. }
        | Op::SetStagingMode { .. }
        | Op::ImportLibrary { .. }
        | Op::FmcadCreateLibrary { .. }
        | Op::FmcadCreateCell { .. }
        | Op::FmcadCreateCellview { .. }
        | Op::FmcadCheckout { .. }
        | Op::FmcadCheckin { .. }
        | Op::FmcadPurgeVersion { .. }
        | Op::FmcadDirectWrite { .. } => {}
    }
}

/// The number of distinct op kinds `wire_samples` must produce — bump
/// together with `assert_sampled` when the vocabulary grows.
const OP_KIND_COUNT: usize = 40;

/// One instance of every op kind. Values need not be *valid* against
/// a fresh engine — an engine rejection is a typed `fail` reply and
/// exercises the error path of the wire; what matters is that every
/// kind crosses the socket and gets a typed answer.
fn wire_samples() -> Vec<Op> {
    let user = UserId::from_raw(3);
    let actor = UserId::from_raw(1);
    vec![
        Op::AddUser {
            name: "wire-alice".into(),
            manager: false,
        },
        Op::AddTeam {
            actor,
            name: "wire-team".into(),
        },
        Op::AddTeamMember {
            actor,
            team: TeamId::from_raw(1),
            user,
        },
        Op::RegisterViewtype {
            name: "wire-view".into(),
            application: ToolKind::Simulator,
        },
        Op::RegisterTool {
            name: "wire-tool".into(),
            kind: ToolKind::LayoutEditor,
        },
        Op::DefineStandardFlow {
            name: "wire-flow".into(),
        },
        Op::DefineQualityGatedFlow {
            name: "wire-qflow".into(),
        },
        Op::DefineFlow {
            actor,
            name: "wire-custom".into(),
        },
        Op::AddActivity {
            actor,
            flow: FlowId::from_raw(9),
            name: "wire-act".into(),
            tool: ToolId::from_raw(4),
            needs: vec![ViewTypeId::from_raw(1)],
            creates: vec![ViewTypeId::from_raw(2)],
            predecessors: vec![ActivityId::from_raw(7)],
        },
        Op::FreezeFlow {
            actor,
            flow: FlowId::from_raw(9),
        },
        Op::CreateProject {
            name: "wire-project".into(),
        },
        Op::CreateCell {
            project: ProjectId::from_raw(1),
            name: "wire-cell".into(),
        },
        Op::CreateCellVersion {
            cell: CellId::from_raw(1),
            flow: FlowId::from_raw(1),
            team: TeamId::from_raw(1),
        },
        Op::DeriveVariant {
            user,
            cv: CellVersionId::from_raw(1),
            name: "wire-variant".into(),
            base: None,
        },
        Op::DeclareCompOf {
            user,
            cv: CellVersionId::from_raw(1),
            child: CellId::from_raw(2),
        },
        Op::ShareCell {
            actor,
            cell: CellId::from_raw(1),
        },
        Op::PromoteVariant {
            user,
            winner: VariantId::from_raw(1),
        },
        Op::Reserve {
            user,
            cv: CellVersionId::from_raw(1),
        },
        Op::Publish {
            user,
            cv: CellVersionId::from_raw(1),
        },
        Op::CreateDesignObject {
            user,
            variant: VariantId::from_raw(1),
            name: "wire-do".into(),
            viewtype: ViewTypeId::from_raw(1),
        },
        Op::AddDesignObjectVersion {
            user,
            design_object: DesignObjectId::from_raw(1),
            data: b"wire data".to_vec().into(),
        },
        Op::MarkEquivalent {
            a: DovId::from_raw(1),
            b: DovId::from_raw(2),
        },
        Op::MergeForward {
            user,
            cv: CellVersionId::from_raw(1),
            base_seq: 0,
            expected: vec![(DesignObjectId::from_raw(1), 1)],
            writes: vec![(DesignObjectId::from_raw(1), b"merged".to_vec().into())],
        },
        Op::RunActivity {
            user,
            variant: VariantId::from_raw(1),
            activity: ActivityId::from_raw(1),
            override_pending: false,
            outputs: vec![("schematic".into(), b"netlist x\n".to_vec().into())],
            session_error: None,
        },
        Op::Browse {
            user,
            dov: DovId::from_raw(1),
        },
        Op::ReadDesignData {
            user,
            dov: DovId::from_raw(1),
        },
        Op::CreateConfiguration {
            user,
            cv: CellVersionId::from_raw(1),
            name: "wire-config".into(),
        },
        Op::CreateConfigVersion {
            user,
            config: ConfigId::from_raw(1),
            contents: vec![DovId::from_raw(1)],
        },
        Op::ExportConfig {
            user,
            config_version: ConfigVersionId::from_raw(1),
            dest: "/export/wire".into(),
        },
        Op::RunLvs {
            user,
            variant: VariantId::from_raw(1),
        },
        Op::SetFutureFeatures {
            features: FutureFeatures::all(),
        },
        Op::SetStagingMode {
            mode: StagingMode::DeepCopy,
        },
        Op::ImportLibrary {
            actor,
            library: "wire-legacy".into(),
            flow: FlowId::from_raw(1),
            team: TeamId::from_raw(1),
        },
        Op::FmcadCreateLibrary {
            name: "wire-fmcad".into(),
        },
        Op::FmcadCreateCell {
            library: "wire-fmcad".into(),
            cell: "wc".into(),
        },
        Op::FmcadCreateCellview {
            library: "wire-fmcad".into(),
            cell: "wc".into(),
            view: "wv".into(),
            viewtype: "schematic".into(),
        },
        Op::FmcadCheckout {
            user: ADMIN.into(),
            library: "wire-fmcad".into(),
            cell: "wc".into(),
            view: "wv".into(),
        },
        Op::FmcadCheckin {
            user: ADMIN.into(),
            library: "wire-fmcad".into(),
            cell: "wc".into(),
            view: "wv".into(),
            data: b"checked in\x00\xff".to_vec().into(),
        },
        Op::FmcadPurgeVersion {
            user: ADMIN.into(),
            library: "wire-fmcad".into(),
            cell: "wc".into(),
            view: "wv".into(),
            version: 1,
        },
        Op::FmcadDirectWrite {
            library: "wire-fmcad".into(),
            cell: "wc".into(),
            view: "wv".into(),
            version: 1,
            data: vec![0xde, 0xad].into(),
        },
    ]
}

#[test]
fn every_op_kind_crosses_the_wire_with_a_typed_reply() {
    let samples = wire_samples();
    let kinds: std::collections::BTreeSet<&str> = samples.iter().map(Op::kind_name).collect();
    assert_eq!(
        kinds.len(),
        OP_KIND_COUNT,
        "wire_samples must cover every op kind; got {kinds:?}"
    );

    // The same schedule runs in-process on a twin service; at the end
    // the two engines must be byte-identical — commits, rejections,
    // journal and all.
    let wire_service = Service::new(Engine::builder().build());
    let twin_service = Service::new(Engine::builder().build());
    let mut server = serve(wire_service.clone());
    let mut client = connect(&server, ADMIN);
    assert!(client.is_admin());

    for op in &samples {
        assert_sampled(op);
        let wire_outcome = client.submit(op).expect("typed reply, not transport error");
        let twin_outcome = twin_service.submit(op.clone());
        match (&wire_outcome, &twin_outcome) {
            (Outcome::Committed { seq, event }, Ok((twin_seq, twin_event))) => {
                assert_eq!(seq, twin_seq, "commit seq diverged for {op:?}");
                assert_eq!(event, twin_event, "event diverged for {op:?}");
            }
            (Outcome::Failed { kind, .. }, Err(twin_err)) => {
                assert_eq!(kind, twin_err.kind(), "error family diverged for {op:?}");
            }
            (wire, twin) => panic!("outcomes diverged for {op:?}: wire {wire:?}, twin {twin:?}"),
        }
    }

    let wire_fp = wire_service.with_engine(|e| e.state_fingerprint().unwrap());
    let twin_fp = twin_service.with_engine(|e| e.state_fingerprint().unwrap());
    assert_eq!(wire_fp, twin_fp, "wire and in-process engines diverged");

    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.ops_ok + stats.ops_failed, samples.len() as u64);
    server.shutdown();
}

/// Runs the full §2.3 design cycle over the wire — ids taken from the
/// typed events the server returns — and checks the wire session sees
/// its own committed writes (read-your-writes across the socket).
#[test]
fn a_design_cycle_over_the_wire_matches_in_process() {
    let wire_service = Service::new(Engine::builder().build());
    let twin_service = Service::new(Engine::builder().build());
    let mut server = serve(wire_service.clone());
    let mut admin = connect(&server, ADMIN);

    // Mirror every wire op onto the twin and insist on identical
    // events throughout.
    let run = |client: &mut Client, op: Op| -> Event {
        let (seq, event) = client.submit_ok(&op).expect("op commits over the wire");
        let (twin_seq, twin_event) = twin_service.submit(op).expect("op commits in-process");
        assert_eq!((seq, &event), (twin_seq, &twin_event));
        event
    };

    let alice = match run(
        &mut admin,
        Op::AddUser {
            name: "alice".into(),
            manager: false,
        },
    ) {
        Event::UserAdded(id) => id,
        other => panic!("expected user-added, got {other:?}"),
    };
    let admin_user = admin.user();
    let team = match run(
        &mut admin,
        Op::AddTeam {
            actor: admin_user,
            name: "asic".into(),
        },
    ) {
        Event::TeamAdded(id) => id,
        other => panic!("expected team-added, got {other:?}"),
    };
    run(
        &mut admin,
        Op::AddTeamMember {
            actor: admin_user,
            team,
            user: alice,
        },
    );
    let flow = match run(
        &mut admin,
        Op::DefineStandardFlow {
            name: "asic-flow".into(),
        },
    ) {
        Event::StandardFlowDefined(flow) => flow,
        other => panic!("expected standard-flow-defined, got {other:?}"),
    };
    let project = match run(
        &mut admin,
        Op::CreateProject {
            name: "alu16".into(),
        },
    ) {
        Event::ProjectCreated(id) => id,
        other => panic!("expected project-created, got {other:?}"),
    };
    let cell = match run(
        &mut admin,
        Op::CreateCell {
            project,
            name: "adder".into(),
        },
    ) {
        Event::CellCreated(id) => id,
        other => panic!("expected cell-created, got {other:?}"),
    };
    let (cv, variant) = match run(
        &mut admin,
        Op::CreateCellVersion {
            cell,
            flow: flow.flow,
            team,
        },
    ) {
        Event::CellVersionCreated(cv, variant) => (cv, variant),
        other => panic!("expected cell-version-created, got {other:?}"),
    };

    // Alice takes over on her own authenticated connection.
    let mut alice_client = connect(&server, "alice");
    assert!(!alice_client.is_admin());
    assert_eq!(alice_client.user(), alice);
    run(&mut alice_client, Op::Reserve { user: alice, cv });
    let data: Blob = b"netlist adder\nport a input\n".to_vec().into();
    let dovs = match run(
        &mut alice_client,
        Op::RunActivity {
            user: alice,
            variant,
            activity: flow.enter_schematic,
            override_pending: false,
            outputs: vec![("schematic".into(), data.clone())],
            session_error: None,
        },
    ) {
        Event::ActivityRun { dovs } => dovs,
        other => panic!("expected activity-run, got {other:?}"),
    };
    assert!(!dovs.is_empty());

    // Read-your-writes across the socket: the browse travels the same
    // connection that just committed the activity and must see it.
    let browsed = match run(
        &mut alice_client,
        Op::Browse {
            user: alice,
            dov: dovs[0],
        },
    ) {
        Event::Browsed { data } => data,
        other => panic!("expected browsed, got {other:?}"),
    };
    assert_eq!(browsed, data);

    // Identity binding: alice cannot act as the admin's user id, nor
    // submit administrative ops.
    match alice_client
        .submit(&Op::Reserve {
            user: admin.user(),
            cv,
        })
        .unwrap()
    {
        Outcome::Failed { kind, .. } => assert_eq!(kind, "identity"),
        other => panic!("expected identity failure, got {other:?}"),
    }
    match alice_client
        .submit(&Op::CreateProject {
            name: "rogue".into(),
        })
        .unwrap()
    {
        Outcome::Failed { kind, .. } => assert_eq!(kind, "identity"),
        other => panic!("expected identity failure, got {other:?}"),
    }

    let wire_fp = wire_service.with_engine(|e| e.state_fingerprint().unwrap());
    let twin_fp = twin_service.with_engine(|e| e.state_fingerprint().unwrap());
    assert_eq!(wire_fp, twin_fp);

    let stats = server.stats();
    assert_eq!(stats.identity_rejections, 2);
    assert_eq!(stats.panics, 0);

    alice_client.bye().expect("clean goodbye");
    admin.bye().expect("clean goodbye");
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let service = Service::new(Engine::builder().build());
    let mut server = serve(service);
    let mut client = connect(&server, ADMIN);

    let mut ids = Vec::new();
    for i in 0..16 {
        let op = Op::CreateProject {
            name: format!("pipelined-{i}"),
        };
        ids.push(client.send_op(&op).expect("send"));
    }
    for want in ids {
        let reply = client.recv_reply().expect("reply");
        assert_eq!(reply.id, want, "replies must arrive in request order");
        assert!(matches!(reply.outcome, Outcome::Committed { .. }));
    }
    client.ping().expect("ping round-trips");
    server.shutdown();
}

#[test]
fn the_sharded_backend_speaks_the_same_protocol() {
    let sharded = ShardedServiceBuilder::new().shards(3).build();
    let mut server =
        Server::bind("127.0.0.1:0", ServerConfig::default(), sharded.clone()).expect("bind");
    let mut admin = connect(&server, ADMIN);
    assert!(admin.is_admin());

    let alice = match admin
        .submit_ok(&Op::AddUser {
            name: "alice".into(),
            manager: false,
        })
        .expect("add user")
    {
        (_, Event::UserAdded(id)) => id,
        (_, other) => panic!("expected user-added, got {other:?}"),
    };

    // Projects land on their owning shards; the wire is agnostic.
    for i in 0..6 {
        let (_, event) = admin
            .submit_ok(&Op::CreateProject {
                name: format!("shard-proj-{i}"),
            })
            .expect("create project");
        assert!(matches!(event, Event::ProjectCreated(_)));
    }

    // A non-admin wire session resolves against the broadcast user
    // table: the wire hands out the shard-local form of the id (valid
    // on every shard via the router's bootstrap passthrough), while
    // the add-user event carried the virtual form — the router maps
    // one onto the other.
    let mut alice_client = connect(&server, "alice");
    assert_eq!(
        sharded.view().router().local_on(alice.raw(), 0),
        Some(alice_client.user().raw()),
        "wire identity must be the local form of the event's virtual id"
    );
    match alice_client
        .submit(&Op::CreateProject {
            name: "rogue".into(),
        })
        .unwrap()
    {
        Outcome::Failed { kind, .. } => assert_eq!(kind, "identity"),
        other => panic!("expected identity failure, got {other:?}"),
    }

    assert_eq!(server.stats().panics, 0);
    server.shutdown();
}

#[test]
fn unknown_users_and_version_skew_are_rejected_in_the_handshake() {
    use jcf_fmcad::cad_net::WireError;

    let service = Service::new(Engine::builder().build());
    let mut server = serve(service);

    match Client::connect(server.local_addr(), "nobody") {
        Err(WireError::Rejected { code, .. }) => assert_eq!(code, "auth"),
        other => panic!("expected auth rejection, got {other:?}"),
    }
    // A healthy handshake still works afterwards.
    let mut client = connect(&server, ADMIN);
    client.ping().expect("ping");
    server.shutdown();
}
