//! Exhaustive adversarial round-trip suite for the [`Op`] line codec.
//!
//! The ops journal is the persistence format of the command core: every
//! mutation survives restarts only as its `Op::to_line` form. This
//! suite drives every variant through the codec with payloads chosen to
//! break a `kind|key=value|...` line format — empty strings, the
//! codec's own separators (`|`, `=`, `;`, `:`, `,`), its `-` none
//! sentinel, newlines, control bytes, non-UTF-8 blobs — and checks the
//! parsed value is identical and the encoded form stays a single line.

use jcf_fmcad::cad_tools::ToolKind;
use jcf_fmcad::cad_vfs::Blob;
use jcf_fmcad::hybrid::{FutureFeatures, Op, StagingMode};
use jcf_fmcad::jcf::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId, FlowId,
    ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};

/// Strings hostile to the line format: separators, sentinels, blank,
/// newline-bearing, control bytes, multi-byte UTF-8, and a long
/// hex-shaped decoy.
fn nasty_strings() -> Vec<String> {
    vec![
        String::new(),
        " ".to_owned(),
        "a|b=c".to_owned(),
        "line\nbreak\r\nmore".to_owned(),
        "semi;colon:pair,comma".to_owned(),
        "-".to_owned(),
        "naïve-φλοω-💡".to_owned(),
        "\u{0}\u{1}\u{7f}control".to_owned(),
        "0123456789abcdef".repeat(16),
    ]
}

/// Payloads hostile to the hex armour: empty, single byte, every byte
/// value (not valid UTF-8), embedded separators, and a large run.
fn nasty_blobs() -> Vec<Blob> {
    vec![
        Blob::new(),
        vec![0u8].into(),
        (0u8..=255).collect::<Vec<_>>().into(),
        b"line\nbreak|field=value;pair:sep".to_vec().into(),
        vec![0xff; 4096].into(),
    ]
}

/// Boundary id values: the codec must not treat any of them specially.
const IDS: [u64; 3] = [0, 1, u64::MAX];

/// Compile-time exhaustiveness guard: this match has no wildcard arm,
/// so adding an `Op` variant fails compilation here until `samples`
/// below covers the new variant too.
fn assert_sampled(op: &Op) {
    match op {
        Op::AddUser { .. }
        | Op::AddTeam { .. }
        | Op::AddTeamMember { .. }
        | Op::RegisterViewtype { .. }
        | Op::RegisterTool { .. }
        | Op::DefineStandardFlow { .. }
        | Op::DefineQualityGatedFlow { .. }
        | Op::DefineFlow { .. }
        | Op::AddActivity { .. }
        | Op::FreezeFlow { .. }
        | Op::CreateProject { .. }
        | Op::CreateCell { .. }
        | Op::CreateCellVersion { .. }
        | Op::DeriveVariant { .. }
        | Op::DeclareCompOf { .. }
        | Op::ShareCell { .. }
        | Op::PromoteVariant { .. }
        | Op::Reserve { .. }
        | Op::Publish { .. }
        | Op::CreateDesignObject { .. }
        | Op::AddDesignObjectVersion { .. }
        | Op::MarkEquivalent { .. }
        | Op::MergeForward { .. }
        | Op::RunActivity { .. }
        | Op::Browse { .. }
        | Op::ReadDesignData { .. }
        | Op::CreateConfiguration { .. }
        | Op::CreateConfigVersion { .. }
        | Op::ExportConfig { .. }
        | Op::RunLvs { .. }
        | Op::SetFutureFeatures { .. }
        | Op::SetStagingMode { .. }
        | Op::ImportLibrary { .. }
        | Op::FmcadCreateLibrary { .. }
        | Op::FmcadCreateCell { .. }
        | Op::FmcadCreateCellview { .. }
        | Op::FmcadCheckout { .. }
        | Op::FmcadCheckin { .. }
        | Op::FmcadPurgeVersion { .. }
        | Op::FmcadDirectWrite { .. } => {}
    }
}

/// The number of distinct op kinds `samples` must produce — bump this
/// together with `assert_sampled` when the vocabulary grows.
const OP_KIND_COUNT: usize = 40;

/// Every `Op` variant instantiated with every nasty string, blob and
/// boundary id that fits its shape.
fn samples() -> Vec<Op> {
    let mut ops = Vec::new();

    for raw in IDS {
        let user = UserId::from_raw(raw);
        let team = TeamId::from_raw(raw);
        ops.push(Op::AddTeamMember {
            actor: user,
            team,
            user,
        });
        ops.push(Op::FreezeFlow {
            actor: user,
            flow: FlowId::from_raw(raw),
        });
        ops.push(Op::CreateCellVersion {
            cell: CellId::from_raw(raw),
            flow: FlowId::from_raw(raw),
            team,
        });
        ops.push(Op::DeclareCompOf {
            user,
            cv: CellVersionId::from_raw(raw),
            child: CellId::from_raw(raw),
        });
        ops.push(Op::ShareCell {
            actor: user,
            cell: CellId::from_raw(raw),
        });
        ops.push(Op::PromoteVariant {
            user,
            winner: VariantId::from_raw(raw),
        });
        ops.push(Op::Reserve {
            user,
            cv: CellVersionId::from_raw(raw),
        });
        ops.push(Op::Publish {
            user,
            cv: CellVersionId::from_raw(raw),
        });
        ops.push(Op::MarkEquivalent {
            a: DovId::from_raw(raw),
            b: DovId::from_raw(raw.wrapping_add(1)),
        });
        ops.push(Op::Browse {
            user,
            dov: DovId::from_raw(raw),
        });
        ops.push(Op::ReadDesignData {
            user,
            dov: DovId::from_raw(raw),
        });
        ops.push(Op::RunLvs {
            user,
            variant: VariantId::from_raw(raw),
        });
    }

    for name in nasty_strings() {
        let actor = UserId::from_raw(7);
        for manager in [false, true] {
            ops.push(Op::AddUser {
                name: name.clone(),
                manager,
            });
        }
        ops.push(Op::AddTeam {
            actor,
            name: name.clone(),
        });
        for kind in [
            ToolKind::SchematicEntry,
            ToolKind::LayoutEditor,
            ToolKind::Simulator,
            ToolKind::Framework,
        ] {
            ops.push(Op::RegisterViewtype {
                name: name.clone(),
                application: kind,
            });
            ops.push(Op::RegisterTool {
                name: name.clone(),
                kind,
            });
        }
        ops.push(Op::DefineStandardFlow { name: name.clone() });
        ops.push(Op::DefineQualityGatedFlow { name: name.clone() });
        ops.push(Op::DefineFlow {
            actor,
            name: name.clone(),
        });
        ops.push(Op::AddActivity {
            actor,
            flow: FlowId::from_raw(9),
            name: name.clone(),
            tool: ToolId::from_raw(4),
            needs: vec![],
            creates: vec![ViewTypeId::from_raw(0), ViewTypeId::from_raw(u64::MAX)],
            predecessors: vec![ActivityId::from_raw(7)],
        });
        ops.push(Op::CreateProject { name: name.clone() });
        ops.push(Op::CreateCell {
            project: ProjectId::from_raw(11),
            name: name.clone(),
        });
        for base in [None, Some(VariantId::from_raw(14))] {
            ops.push(Op::DeriveVariant {
                user: actor,
                cv: CellVersionId::from_raw(13),
                name: name.clone(),
                base,
            });
        }
        ops.push(Op::CreateDesignObject {
            user: actor,
            variant: VariantId::from_raw(14),
            name: name.clone(),
            viewtype: ViewTypeId::from_raw(5),
        });
        ops.push(Op::CreateConfiguration {
            user: actor,
            cv: CellVersionId::from_raw(13),
            name: name.clone(),
        });
        ops.push(Op::CreateConfigVersion {
            user: actor,
            config: ConfigId::from_raw(19),
            contents: vec![DovId::from_raw(0), DovId::from_raw(u64::MAX)],
        });
        ops.push(Op::ExportConfig {
            user: actor,
            config_version: ConfigVersionId::from_raw(20),
            dest: name.clone(),
        });
        ops.push(Op::ImportLibrary {
            actor,
            library: name.clone(),
            flow: FlowId::from_raw(9),
            team: TeamId::from_raw(2),
        });
        ops.push(Op::FmcadCreateLibrary { name: name.clone() });
        ops.push(Op::FmcadCreateCell {
            library: name.clone(),
            cell: name.clone(),
        });
        ops.push(Op::FmcadCreateCellview {
            library: name.clone(),
            cell: name.clone(),
            view: name.clone(),
            viewtype: name.clone(),
        });
        ops.push(Op::FmcadCheckout {
            user: name.clone(),
            library: name.clone(),
            cell: name.clone(),
            view: name.clone(),
        });
        ops.push(Op::FmcadPurgeVersion {
            user: name.clone(),
            library: name.clone(),
            cell: name.clone(),
            view: name.clone(),
            version: u32::MAX,
        });
        // A failed tool session whose rendered error is itself nasty.
        ops.push(Op::RunActivity {
            user: actor,
            variant: VariantId::from_raw(14),
            activity: ActivityId::from_raw(7),
            override_pending: false,
            outputs: vec![],
            session_error: Some(name.clone()),
        });
    }

    for data in nasty_blobs() {
        let user = UserId::from_raw(3);
        ops.push(Op::AddDesignObjectVersion {
            user,
            design_object: DesignObjectId::from_raw(16),
            data: data.clone(),
        });
        ops.push(Op::FmcadCheckin {
            user: "u|=;".to_owned(),
            library: String::new(),
            cell: "c\n".to_owned(),
            view: "v".to_owned(),
            data: data.clone(),
        });
        ops.push(Op::FmcadDirectWrite {
            library: "lib".to_owned(),
            cell: "c".to_owned(),
            view: "v".to_owned(),
            version: 0,
            data: data.clone(),
        });
        // A merge with boundary baselines and this payload staged,
        // plus an empty-baseline merge.
        ops.push(Op::MergeForward {
            user,
            cv: CellVersionId::from_raw(13),
            base_seq: u64::MAX,
            expected: vec![
                (DesignObjectId::from_raw(0), 0),
                (DesignObjectId::from_raw(u64::MAX), u32::MAX),
            ],
            writes: vec![
                (DesignObjectId::from_raw(16), data.clone()),
                (DesignObjectId::from_raw(17), Blob::new()),
            ],
        });
        ops.push(Op::MergeForward {
            user,
            cv: CellVersionId::from_raw(13),
            base_seq: 0,
            expected: vec![],
            writes: vec![],
        });
        // Multi-output activity pairing every nasty viewtype name with
        // this payload, plus an empty trailing output.
        ops.push(Op::RunActivity {
            user,
            variant: VariantId::from_raw(14),
            activity: ActivityId::from_raw(7),
            override_pending: true,
            outputs: nasty_strings()
                .into_iter()
                .map(|view| (view, data.clone()))
                .chain(std::iter::once(("".to_owned(), Blob::new())))
                .collect(),
            session_error: None,
        });
    }

    for features in [
        FutureFeatures::default(),
        FutureFeatures::all(),
        FutureFeatures {
            procedural_interface: true,
            ..FutureFeatures::default()
        },
    ] {
        ops.push(Op::SetFutureFeatures { features });
    }
    for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
        ops.push(Op::SetStagingMode { mode });
    }

    ops
}

#[test]
fn every_variant_round_trips_adversarial_payloads() {
    let ops = samples();
    let kinds: std::collections::BTreeSet<&str> = ops.iter().map(Op::kind_name).collect();
    assert_eq!(
        kinds.len(),
        OP_KIND_COUNT,
        "samples() must cover every op kind; missing or extra: {kinds:?}"
    );
    for op in &ops {
        assert_sampled(op);
        let line = op.to_line();
        assert!(
            !line.contains('\n') && !line.contains('\r'),
            "journal lines must stay single-line: {line:?}"
        );
        let back = Op::parse_line(&line).expect("encoded line parses");
        assert_eq!(&back, op, "round trip of {line:?}");
    }
}

#[test]
fn a_journal_document_round_trips_in_order() {
    // The journal persists as newline-joined lines; the adversarial
    // payloads above must not break document framing or order.
    let ops = samples();
    let doc = ops.iter().map(Op::to_line).collect::<Vec<_>>().join("\n");
    let back: Vec<Op> = doc
        .lines()
        .map(|l| Op::parse_line(l).expect("line parses"))
        .collect();
    assert_eq!(back, ops);
}

#[test]
fn malformed_lines_are_rejected_not_misparsed() {
    let cases = [
        "",
        "no-such-op|x=1",
        "reserve",
        "reserve|user=3",
        "reserve|user=3|cv",
        "reserve|user=zz|cv=1",
        "reserve|user=-1|cv=1",
        "add-user|name=xyz|manager=true",
        "add-user|name=616c696365|manager=maybe",
        "add-user|name=61g|manager=true",
        "add-user|name=6|manager=true",
        "add-user|name=ff|manager=true",
        "add-activity|actor=1|flow=9|name=61|tool=4|needs=1,,2|creates=|predecessors=",
        "run-activity|user=3|variant=14|activity=7|override=true|outputs=zz|session_error=-",
        "run-activity|user=3|variant=14|activity=7|override=true|outputs=61:zz|session_error=-",
        "run-activity|user=3|variant=14|activity=7|override=true|outputs=61|session_error=-",
        "set-staging-mode|mode=warp",
        "merge-forward|user=3|cv=13|base_seq=zz|expected=|writes=",
        "merge-forward|user=3|cv=13|base_seq=0|expected=16|writes=",
        "merge-forward|user=3|cv=13|base_seq=0|expected=16:x|writes=",
        "merge-forward|user=3|cv=13|base_seq=0|expected=|writes=16",
        "merge-forward|user=3|cv=13|base_seq=0|expected=|writes=16:zz",
        "fmcad-purge-version|user=75|library=6c|cell=63|view=76|version=-3",
    ];
    for line in cases {
        assert!(
            Op::parse_line(line).is_err(),
            "must reject malformed line {line:?}"
        );
    }
}

#[test]
fn truncating_any_encoded_line_never_panics() {
    // Parse prefixes of every encoded sample: the codec must fail
    // cleanly (or, for a lucky prefix, parse to *some* op) but never
    // panic on torn journal tails after a crash. Short lines get every
    // cut; long ones a stride, to keep the suite fast.
    for op in samples() {
        let line = op.to_line();
        let stride = (line.len() / 257).max(1);
        for cut in (0..line.len()).step_by(stride) {
            if line.is_char_boundary(cut) {
                let _ = Op::parse_line(&line[..cut]);
            }
        }
    }
}
