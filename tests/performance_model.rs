//! §3.6 shape checks: metadata operations are cheap in the hybrid
//! environment, design-data operations pay the copy path — growing
//! linearly with design size and hitting even read-only access — while
//! FMCAD native access works in place.

use design_data::{format, generate};
use hybrid::{Engine, ToolOutput};

struct Env {
    hy: Engine,
    alice: jcf::UserId,
    team: jcf::TeamId,
    flow: hybrid::StandardFlow,
}

fn env() -> Env {
    let mut hy = Engine::new();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false).unwrap();
    let team = hy.add_team(admin, "t").unwrap();
    hy.add_team_member(admin, team, alice).unwrap();
    let flow = hy.standard_flow("f").unwrap();
    Env {
        hy,
        alice,
        team,
        flow,
    }
}

/// Stores a design of roughly `gates` gates and returns its DOV.
fn store_design(
    e: &mut Env,
    project_name: &str,
    gates: usize,
) -> (jcf::ProjectId, jcf::DovId, u64) {
    let project = e.hy.create_project(project_name).unwrap();
    let cell = e.hy.create_cell(project, "cloud").unwrap();
    let (cv, variant) = e.hy.create_cell_version(cell, e.flow.flow, e.team).unwrap();
    e.hy.reserve(e.alice, cv).unwrap();
    let design = generate::random_logic(gates, 42);
    let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
    let size = bytes.len() as u64;
    let dovs =
        e.hy.run_activity(e.alice, variant, e.flow.enter_schematic, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: bytes.into(),
            }])
        })
        .unwrap();
    (project, dovs[0], size)
}

#[test]
fn metadata_ops_cost_no_content_io() {
    let mut e = env();
    let project = e.hy.create_project("meta").unwrap();
    let cell = e.hy.create_cell(project, "c").unwrap();
    let before = e.hy.io_meter();
    // Pure desktop metadata work: versions, variants, reservations.
    let (cv, v0) = e.hy.create_cell_version(cell, e.flow.flow, e.team).unwrap();
    e.hy.reserve(e.alice, cv).unwrap();
    e.hy.derive_variant(e.alice, cv, "x", Some(v0)).unwrap();
    let delta = e.hy.io_meter().since(&before);
    // The only I/O is the slave's tiny .meta rewrite; no design data
    // moves. §3.6: "the performance of metadata operations ... is
    // sufficiently high".
    assert_eq!(delta.bytes_read, 0, "metadata ops read no design data");
    assert!(
        delta.bytes_written < 512,
        "only the .meta is rewritten, got {delta:?}"
    );
}

#[test]
fn read_only_browse_scales_with_design_size() {
    let mut e = env();
    let (_, small_dov, small_size) = store_design(&mut e, "small", 20);
    let (_, large_dov, large_size) = store_design(&mut e, "large", 800);
    assert!(large_size > 10 * small_size, "workload sizes must separate");

    let before = e.hy.io_meter();
    e.hy.browse(e.alice, small_dov).unwrap();
    let small_cost = e.hy.io_meter().since(&before);

    let before = e.hy.io_meter();
    e.hy.browse(e.alice, large_dov).unwrap();
    let large_cost = e.hy.io_meter().since(&before);

    // §3.6: the copy makes the time "strongly dependent on the amount
    // of data" — the tick ratio must track the size ratio.
    assert!(large_cost.ticks > 5 * small_cost.ticks);
    assert_eq!(
        large_cost.bytes_written, large_size,
        "read-only access still writes a copy"
    );
}

#[test]
fn fmcad_native_read_beats_hybrid_browse() {
    let mut e = env();
    let (_, dov, size) = store_design(&mut e, "p", 400);
    let mirror = e.hy.mirror_of(dov).unwrap().clone();

    let before = e.hy.io_meter();
    e.hy.browse(e.alice, dov).unwrap();
    let hybrid_cost = e.hy.io_meter().since(&before);

    let before = e.hy.io_meter();
    e.hy.fmcad()
        .read_version(&mirror.library, &mirror.cell, &mirror.view, mirror.version)
        .unwrap();
    let native_cost = e.hy.io_meter().since(&before);

    assert_eq!(native_cost.bytes_written, 0);
    assert_eq!(native_cost.bytes_read, size);
    assert!(
        hybrid_cost.ticks > native_cost.ticks,
        "the staging copy must cost more than reading in place"
    );
}

#[test]
fn activity_pipeline_moves_each_byte_multiple_times() {
    // One schematic-entry run writes the staged output, reads it back
    // into the database and mirrors it into the library: ≥3 traversals.
    let mut e = env();
    let before = e.hy.io_meter();
    let (_, _, size) = store_design(&mut e, "p", 100);
    let delta = e.hy.io_meter().since(&before);
    assert!(delta.bytes_written >= 2 * size, "staging + mirror writes");
    assert!(delta.bytes_read >= size, "staging read-back");
}
