//! Point-in-time recovery: `Engine::recover_at` and
//! `ShardedService::recover_at` must restore *exactly* the state the
//! chain persisted at any requested sequence number — byte-identical
//! fingerprints at every commit boundary of a five-commit schedule,
//! under both staging modes and at 1/2/4 shards — and reject targets
//! the persisted records cannot reach with the typed
//! `SeqUnreachable` error.
//!
//! Fingerprint discipline: `state_fingerprint` reads the cost meter
//! first and then charges the walk, so every engine or service
//! instance is fingerprinted **once**. Reference prints come from
//! restoring a clone of the backup taken at the boundary; the
//! point-in-time prints come from `recover_at` against the final
//! backup. Equality proves the chain replays history, not just the
//! newest state.

use cad_vfs::{SplitMix64, Vfs, VfsPath};
use design_data::{format, generate};
use hybrid::{Engine, HybridError, ShardedService, StagingMode, ToolOutput};
use jcf::{CellId, CellVersionId, ProjectId, TeamId, UserId, VariantId};
use test_support::pick;

const DIR: &str = "/backup/pit";

/// Driver bookkeeping for the engine op stream.
struct World {
    alice: UserId,
    team: TeamId,
    project: ProjectId,
    cells: Vec<CellId>,
    slots: Vec<(CellVersionId, VariantId)>,
    next_cell: u32,
}

/// Bootstraps one engine (in `mode`) plus the ids the stream aims at.
fn bootstrap(mode: StagingMode) -> (Engine, hybrid::StandardFlow, World) {
    let mut en = Engine::builder().staging_mode(mode).build();
    let admin = en.admin();
    let alice = en.add_user("alice", false).unwrap();
    let team = en.add_team(admin, "t").unwrap();
    en.add_team_member(admin, team, alice).unwrap();
    let flow = en.standard_flow("f").unwrap();
    let project = en.create_project("p").unwrap();
    let world = World {
        alice,
        team,
        project,
        cells: Vec::new(),
        slots: Vec::new(),
        next_cell: 0,
    };
    (en, flow, world)
}

/// Applies one random op; failures are journaled like any other op.
fn step(en: &mut Engine, rng: &mut SplitMix64, flow: &hybrid::StandardFlow, w: &mut World) {
    match rng.below(6) {
        0 => {
            w.next_cell += 1;
            let cell = en
                .create_cell(w.project, &format!("cell{}", w.next_cell))
                .unwrap();
            w.cells.push(cell);
        }
        1 => {
            if let Some(&cell) = pick(rng, &w.cells) {
                let (cv, variant) = en.create_cell_version(cell, flow.flow, w.team).unwrap();
                w.slots.push((cv, variant));
            } else {
                let _ = en.create_project("p");
            }
        }
        2 => {
            if let Some(&(cv, _)) = pick(rng, &w.slots) {
                let _ = en.reserve(w.alice, cv);
            } else {
                let _ = en.create_project("p");
            }
        }
        3 => {
            if let Some(&(_, variant)) = pick(rng, &w.slots) {
                let gates = 1 + rng.below(12);
                let seed = rng.next_u64();
                let design = generate::random_logic(gates, seed);
                let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
                let _ = en.run_activity(w.alice, variant, flow.enter_schematic, false, move |_| {
                    Ok(vec![ToolOutput {
                        viewtype: "schematic".into(),
                        data: bytes.into(),
                    }])
                });
            } else {
                let _ = en.create_project("p");
            }
        }
        4 => {
            if let Some(&(cv, _)) = pick(rng, &w.slots) {
                let _ = en.publish(w.alice, cv);
            } else {
                let _ = en.create_project("p");
            }
        }
        _ => {
            en.create_project("p").expect_err("duplicate project");
        }
    }
}

/// One persistence call between op batches.
#[derive(Clone, Copy)]
enum Commit {
    Checkpoint,
    Sync,
}

/// Five commits; the 30+40 tail between the syncs outgrows the
/// 64-entry segment cap so sealed, open, and delta-retired segments
/// all appear in the chain that the targets walk.
const SCHEDULE: &[(usize, Commit)] = &[
    (40, Commit::Checkpoint),
    (30, Commit::Sync),
    (40, Commit::Sync),
    (30, Commit::Checkpoint),
    (20, Commit::Sync),
];

/// Runs the engine schedule, recording `(seq, reference fingerprint)`
/// at every commit boundary, and returns the final backup disk and
/// the boundaries.
fn run_engine_schedule(mode: StagingMode, seed: u64) -> (Vfs, Vec<(u64, String)>) {
    let dir = VfsPath::parse(DIR).unwrap();
    let mut rng = SplitMix64::new(seed);
    let (mut en, flow, mut world) = bootstrap(mode);
    let mut backup = Vfs::new();
    let mut boundaries = Vec::new();
    for &(ops, commit) in SCHEDULE {
        for _ in 0..ops {
            step(&mut en, &mut rng, &flow, &mut world);
        }
        match commit {
            Commit::Checkpoint => en.checkpoint(&mut backup, &dir).unwrap(),
            Commit::Sync => en.sync_journal(&mut backup, &dir).unwrap(),
        }
        let print = {
            let mut snap = backup.clone();
            Engine::restore_from(&mut snap, &dir)
                .unwrap()
                .state_fingerprint()
                .unwrap()
        };
        boundaries.push((en.seq(), print));
    }
    (backup, boundaries)
}

/// The headline single-engine matrix: every commit boundary of the
/// schedule restores byte-identically via `recover_at`, in both
/// staging modes.
#[test]
fn recover_at_restores_every_commit_boundary_in_both_staging_modes() {
    let dir = VfsPath::parse(DIR).unwrap();
    for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
        let (mut backup, boundaries) = run_engine_schedule(mode, 0x9147_0001);
        assert_eq!(boundaries.len(), SCHEDULE.len());
        for (i, (seq, print)) in boundaries.iter().enumerate() {
            let (recovered, report) = Engine::recover_at(&mut backup, &dir, *seq)
                .unwrap_or_else(|e| panic!("{mode:?} boundary {i} (seq {seq}): {e:?}"));
            assert_eq!(recovered.seq(), *seq, "{mode:?} boundary {i}");
            assert_eq!(report.chain_break, None, "{mode:?} boundary {i}");
            assert_eq!(
                recovered.state_fingerprint().unwrap(),
                *print,
                "{mode:?} boundary {i} (seq {seq}) must restore byte-identically"
            );
        }
    }
}

/// Between the boundaries too: every persisted sequence number from
/// the base checkpoint to the newest synced entry is an exact target,
/// and both ends beyond the chain are typed `SeqUnreachable`.
#[test]
fn every_persisted_sequence_number_is_an_exact_target() {
    let dir = VfsPath::parse(DIR).unwrap();
    let (mut backup, boundaries) = run_engine_schedule(StagingMode::ZeroCopy, 0x9147_0002);
    let base_seq = boundaries.first().unwrap().0;
    let last_seq = boundaries.last().unwrap().0;

    for seq in base_seq..=last_seq {
        let (recovered, _) = Engine::recover_at(&mut backup, &dir, seq)
            .unwrap_or_else(|e| panic!("seq {seq}: {e:?}"));
        assert_eq!(recovered.seq(), seq);
    }

    let before = Engine::recover_at(&mut backup, &dir, base_seq - 1).unwrap_err();
    match before {
        HybridError::SeqUnreachable {
            requested,
            reachable,
        } => {
            assert_eq!(requested, base_seq - 1);
            assert_eq!(reachable, base_seq, "the base is the oldest boundary");
        }
        other => panic!("expected SeqUnreachable, got {other:?}"),
    }
    let past = Engine::recover_at(&mut backup, &dir, last_seq + 1).unwrap_err();
    assert_eq!(past.kind(), "seq-unreachable");
}

/// A recovered-then-resumed engine forks the timeline: its next
/// checkpoint commits the fork, and a plain restore then lands on the
/// forked state — the records beyond the fork point become garbage.
#[test]
fn recovering_mid_chain_and_resuming_forks_the_timeline() {
    let dir = VfsPath::parse(DIR).unwrap();
    let (mut backup, boundaries) = run_engine_schedule(StagingMode::ZeroCopy, 0x9147_0003);
    // Fork from the middle boundary (after the second sync).
    let (fork_seq, _) = boundaries[2];
    let (mut forked, _) = Engine::recover_at(&mut backup, &dir, fork_seq).unwrap();

    let project = forked.create_project("fork").unwrap();
    for i in 0..10 {
        forked.create_cell(project, &format!("fork{i}")).unwrap();
    }
    forked.checkpoint(&mut backup, &dir).unwrap();
    let forked_print = forked.state_fingerprint().unwrap();

    let restored = Engine::restore_from(&mut backup, &dir).unwrap();
    assert_eq!(restored.seq(), forked.seq());
    assert_eq!(restored.state_fingerprint().unwrap(), forked_print);
}

/// `compact` trades history for space: targets inside retired segment
/// windows become unreachable, while delta-checkpoint boundaries (and
/// everything past the newest one) survive.
#[test]
fn compaction_retires_mid_window_targets_but_keeps_boundaries() {
    let dir = VfsPath::parse(DIR).unwrap();
    let (mut backup, boundaries) = run_engine_schedule(StagingMode::ZeroCopy, 0x9147_0004);
    let base_seq = boundaries.first().unwrap().0;
    let delta_seq = boundaries[3].0; // the second Checkpoint
    let last_seq = boundaries.last().unwrap().0;

    let (mut owner, _) = Engine::recover_from(&mut backup, &dir).unwrap();
    let removed = owner.compact(&mut backup, &dir).unwrap();
    assert!(removed > 0, "the delta checkpoint retired segments");

    // Inside the retired window: gone, typed.
    let mid = (base_seq + delta_seq) / 2;
    assert!(mid > base_seq && mid < delta_seq, "schedule shrank");
    let err = Engine::recover_at(&mut backup, &dir, mid).unwrap_err();
    assert_eq!(err.kind(), "seq-unreachable");

    // Checkpoint boundaries and the live tail survive compaction.
    for seq in [base_seq, delta_seq, last_seq] {
        let (recovered, _) = Engine::recover_at(&mut backup, &dir, seq)
            .unwrap_or_else(|e| panic!("post-compact seq {seq}: {e:?}"));
        assert_eq!(recovered.seq(), seq);
    }
}

// ---------------------------------------------------------------------------
// Sharded point-in-time recovery
// ---------------------------------------------------------------------------

const ROOT: &str = "/backup/pit-shards";

/// Runs a five-commit schedule on a sharded service, recording at
/// every boundary the last committed sequence and the reference
/// fingerprint of a service recovered from a clone of the backup.
/// Returns the final backup and the boundaries.
fn run_sharded_schedule(shards: usize, mode: StagingMode) -> (Vfs, Vec<(u64, String)>) {
    let root = VfsPath::parse(ROOT).unwrap();
    let service = ShardedService::builder()
        .shards(shards)
        .staging_mode(mode)
        .build();
    let admin = service.open_session(service.admin());
    let team = admin.add_team("t").unwrap();
    let user = admin.add_user("alice", false).unwrap();
    admin.add_team_member(team, user).unwrap();
    let flow = admin.standard_flow("f").unwrap();
    let alice = service.open_session(user);

    // Spread projects across partitions; comp-of edges between them
    // exercise the cross-shard path whenever the names land apart.
    let projects: Vec<ProjectId> = ["alu16", "dsp", "rom", "fpu"]
        .iter()
        .map(|name| alice.create_project(name).unwrap())
        .collect();
    let mut rng = SplitMix64::new(0x51A2_0000 + shards as u64);
    let mut cells: Vec<CellId> = Vec::new();
    let mut slots: Vec<(CellVersionId, VariantId)> = Vec::new();
    let mut next_cell = 0u32;
    let mut stepper =
        |rng: &mut SplitMix64, cells: &mut Vec<CellId>, slots: &mut Vec<_>| match rng.below(5) {
            0 | 1 => {
                next_cell += 1;
                let project = *pick(rng, &projects).unwrap();
                let cell = alice
                    .create_cell(project, &format!("cell{next_cell}"))
                    .unwrap();
                cells.push(cell);
            }
            2 => {
                if let Some(&cell) = pick(rng, cells) {
                    let (cv, variant) = alice.create_cell_version(cell, flow.flow, team).unwrap();
                    alice.reserve(cv).unwrap();
                    slots.push((cv, variant));
                }
            }
            3 => {
                if let (Some(&(cv, _)), Some(&child)) = (pick(rng, slots), pick(rng, cells)) {
                    let _ = alice.declare_comp_of(cv, child);
                }
            }
            _ => {
                if let Some(&(_, variant)) = pick(rng, slots) {
                    let seed = rng.next_u64();
                    let design = generate::random_logic(4, seed);
                    let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
                    let _ = alice.run_activity(
                        variant,
                        flow.enter_schematic,
                        false,
                        vec![("schematic".to_owned(), bytes.into())],
                    );
                }
            }
        };

    let mut backup = Vfs::new();
    let mut boundaries = Vec::new();
    for &(ops, commit) in &[
        (12usize, Commit::Checkpoint),
        (10, Commit::Sync),
        (10, Commit::Sync),
        (10, Commit::Checkpoint),
        (8, Commit::Sync),
    ] {
        for _ in 0..ops {
            stepper(&mut rng, &mut cells, &mut slots);
        }
        match commit {
            Commit::Checkpoint => service.checkpoint(&mut backup, &root).unwrap(),
            Commit::Sync => service.sync(&mut backup, &root).unwrap(),
        }
        let target = alice.view().seq() - 1;
        let print = {
            let mut snap = backup.clone();
            ShardedService::recover(&mut snap, &root)
                .unwrap()
                .0
                .state_fingerprint()
                .unwrap()
        };
        boundaries.push((target, print));
    }
    (backup, boundaries)
}

/// The sharded matrix: every epoch and sync boundary of the schedule
/// restores byte-identically through `ShardedService::recover_at`, at
/// 1, 2 and 4 shards and in both staging modes; targets outside the
/// persisted window are typed `SeqUnreachable`.
#[test]
fn sharded_recover_at_restores_every_boundary_at_1_2_4_shards() {
    let root = VfsPath::parse(ROOT).unwrap();
    for shards in [1usize, 2, 4] {
        for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
            let (mut backup, boundaries) = run_sharded_schedule(shards, mode);
            let first_epoch_target = boundaries[0].0;
            let last_target = boundaries.last().unwrap().0;
            for (i, (target, print)) in boundaries.iter().enumerate() {
                let (recovered, report) = ShardedService::recover_at(&mut backup, &root, *target)
                    .unwrap_or_else(|e| panic!("{shards} shard(s) {mode:?} boundary {i}: {e:?}"));
                assert_eq!(
                    report.rolled_back_prepares,
                    Vec::<u64>::new(),
                    "{shards} shard(s) {mode:?} boundary {i}: clean schedule"
                );
                assert_eq!(
                    recovered.view().seq(),
                    target + 1,
                    "{shards} shard(s) {mode:?} boundary {i}"
                );
                assert_eq!(
                    recovered.state_fingerprint().unwrap(),
                    *print,
                    "{shards} shard(s) {mode:?} boundary {i} (target {target})"
                );
            }

            // Before the first epoch checkpoint and past the newest
            // synced commit there is nothing to anchor to.
            for bad in [first_epoch_target.checked_sub(1), Some(last_target + 1)] {
                let Some(bad) = bad else { continue };
                let err = ShardedService::recover_at(&mut backup, &root, bad).unwrap_err();
                assert_eq!(
                    err.kind(),
                    "seq-unreachable",
                    "{shards} shard(s) {mode:?} target {bad}: {err:?}"
                );
            }
        }
    }
}
