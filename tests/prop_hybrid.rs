// Gated off by default: this suite needs the crates.io `proptest`
// crate, which offline builds cannot fetch. Re-add the dev-dependency
// and build with `--features proptest-suites` to run it. The
// deterministic SplitMix64-driven suites cover the same ground by
// default.
#![cfg(feature = "proptest-suites")]

//! Property tests over the hybrid framework: random valid desktop
//! sessions never break the cross-framework invariants.

use design_data::{format, generate};
use hybrid::{Engine, ToolOutput};
use proptest::prelude::*;

/// A random but *valid* designer action.
#[derive(Debug, Clone)]
enum Action {
    NewCell,
    NewVersion(usize),
    NewVariant(usize, u8),
    EnterSchematic(usize, u8),
    Simulate(usize),
    Publish(usize),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::NewCell),
        any::<usize>().prop_map(Action::NewVersion),
        (any::<usize>(), any::<u8>()).prop_map(|(i, n)| Action::NewVariant(i, n)),
        (any::<usize>(), any::<u8>()).prop_map(|(i, g)| Action::EnterSchematic(i, g)),
        any::<usize>().prop_map(Action::Simulate),
        any::<usize>().prop_map(Action::Publish),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any sequence of valid desktop actions, every coupled
    /// project verifies clean and all derivation edges point backwards
    /// in creation time.
    #[test]
    fn random_sessions_stay_consistent(actions in prop::collection::vec(action_strategy(), 1..25)) {
        let mut hy = Engine::new();
        let admin = hy.admin();
        let alice = hy.add_user("alice", false).unwrap();
        let team = hy.add_team(admin, "t").unwrap();
        hy.add_team_member(admin, team, alice).unwrap();
        let flow = hy.standard_flow("f").unwrap();
        let project = hy.create_project("p").unwrap();

        // Track live (cell, reserved cv, variant) triples.
        let mut cells = Vec::new();
        let mut slots: Vec<(jcf::CellVersionId, jcf::VariantId, bool)> = Vec::new();
        let mut cell_count = 0u32;

        for action in actions {
            match action {
                Action::NewCell => {
                    cell_count += 1;
                    let cell = hy.create_cell(project, &format!("cell{cell_count}")).unwrap();
                    cells.push(cell);
                }
                Action::NewVersion(i) => {
                    if cells.is_empty() { continue; }
                    let cell = cells[i % cells.len()];
                    let (cv, variant) = hy.create_cell_version(cell, flow.flow, team).unwrap();
                    hy.reserve(alice, cv).unwrap();
                    slots.push((cv, variant, true));
                }
                Action::NewVariant(i, n) => {
                    if slots.is_empty() { continue; }
                    let (cv, base, reserved) = slots[i % slots.len()];
                    if !reserved { continue; }
                    let name = format!("var{n}-{i}");
                    if let Ok(v) = hy.derive_variant(alice, cv, &name, Some(base)) {
                        slots.push((cv, v, true));
                    }
                }
                Action::EnterSchematic(i, gates) => {
                    if slots.is_empty() { continue; }
                    let (_, variant, reserved) = slots[i % slots.len()];
                    if !reserved { continue; }
                    let design = generate::random_logic(1 + gates as usize % 40, u64::from(gates));
                    let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
                    hy.run_activity(alice, variant, flow.enter_schematic, false, move |_| {
                        Ok(vec![ToolOutput { viewtype: "schematic".into(), data: bytes.into() }])
                    }).unwrap();
                }
                Action::Simulate(i) => {
                    if slots.is_empty() { continue; }
                    let (_, variant, reserved) = slots[i % slots.len()];
                    if !reserved { continue; }
                    // Only legal when a schematic exists; otherwise the
                    // flow engine rejects, which is fine.
                    let _ = hy.run_activity(alice, variant, flow.simulate, false, |_| {
                        Ok(vec![ToolOutput { viewtype: "waveform".into(), data: b"waves\n".to_vec().into() }])
                    });
                }
                Action::Publish(i) => {
                    if slots.is_empty() { continue; }
                    let idx = i % slots.len();
                    let (cv, _, reserved) = slots[idx];
                    if reserved {
                        hy.publish(alice, cv).unwrap();
                        for slot in slots.iter_mut().filter(|s| s.0 == cv) {
                            slot.2 = false;
                        }
                    }
                }
            }
        }

        // Invariant 1: the coupled project always verifies clean.
        prop_assert!(hy.verify_project(project).unwrap().is_empty());

        // Invariant 2: every mirrored DOV's bytes match the library.
        for (cv, variant, _) in &slots {
            let _ = cv;
            for design_object in hy.jcf().design_objects_of(*variant) {
                for dov in hy.jcf().versions_of_design_object(design_object) {
                    if let Some(mirror) = hy.mirror_of(dov).cloned() {
                        let db = hy.jcf().database().get(dov.object_id(), "data").unwrap()
                            .as_bytes().unwrap().to_vec();
                        let lib = hy.fmcad().read_version(&mirror.library, &mirror.cell, &mirror.view, mirror.version)
                            .unwrap();
                        prop_assert_eq!(db, lib);
                    }
                }
            }
        }

        // Invariant 3: derivation edges are acyclic (derived-from ids
        // were always created earlier).
        for (_, variant, _) in &slots {
            for design_object in hy.jcf().design_objects_of(*variant) {
                for dov in hy.jcf().versions_of_design_object(design_object) {
                    for parent in hy.jcf().derived_from(dov) {
                        prop_assert!(parent.object_id() < dov.object_id());
                    }
                }
            }
        }
    }
}
