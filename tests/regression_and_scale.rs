//! Golden-waveform regression gating and a scale stress test across
//! the whole stack.

use std::collections::BTreeMap;

use cad_tools::{check_lvs, compare_waveforms, Simulator};
use design_data::{format, generate, Logic, Waveforms};
use hybrid::{Engine, ToolOutput};

struct Env {
    hy: Engine,
    alice: jcf::UserId,
    team: jcf::TeamId,
    flow: hybrid::StandardFlow,
}

fn env() -> Env {
    let mut hy = Engine::new();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false).unwrap();
    let team = hy.add_team(admin, "t").unwrap();
    hy.add_team_member(admin, team, alice).unwrap();
    let flow = hy.standard_flow("f").unwrap();
    Env {
        hy,
        alice,
        team,
        flow,
    }
}

fn simulate_adder(netlists: &BTreeMap<String, design_data::Netlist>, top: &str) -> Waveforms {
    let mut sim = Simulator::elaborate(top, netlists).unwrap();
    for (pin, v) in [("a0", Logic::One), ("b0", Logic::One), ("cin", Logic::Zero)] {
        sim.set_input(pin, v).unwrap();
    }
    for i in 1..4 {
        sim.set_input(&format!("a{i}"), Logic::Zero).unwrap();
        sim.set_input(&format!("b{i}"), Logic::Zero).unwrap();
    }
    sim.settle().unwrap();
    sim.into_waves()
}

#[test]
fn golden_waveform_regression_gates_a_release() {
    // The "golden" run of the released adder.
    let design = generate::ripple_adder(4);
    let golden = simulate_adder(&design.netlists, &design.top);

    // A re-run of the same design must pass the gate...
    let rerun = simulate_adder(&design.netlists, &design.top);
    assert!(compare_waveforms(&golden, &rerun).is_empty());

    // ...and a functionally changed leaf cell must fail it.
    let mut broken = design.netlists.clone();
    let mut fa = design_data::Netlist::new("full_adder");
    for p in ["a", "b", "cin"] {
        fa.add_port(p, design_data::Direction::Input).unwrap();
    }
    fa.add_port("sum", design_data::Direction::Output).unwrap();
    fa.add_port("cout", design_data::Direction::Output).unwrap();
    // Wrong logic: sum = a AND b, cout = a OR b.
    fa.add_instance(
        "g1",
        design_data::MasterRef::Gate(design_data::GateKind::And2),
        &[("a", "a"), ("b", "b"), ("y", "sum")],
    )
    .unwrap();
    fa.add_instance(
        "g2",
        design_data::MasterRef::Gate(design_data::GateKind::Or2),
        &[("a", "a"), ("b", "b"), ("y", "cout")],
    )
    .unwrap();
    broken.insert("full_adder".to_owned(), fa);
    let bad = simulate_adder(&broken, &design.top);
    let mismatches = compare_waveforms(&golden, &bad);
    assert!(
        !mismatches.is_empty(),
        "the regression gate must catch the change"
    );
}

#[test]
fn twenty_cell_project_scales_and_stays_consistent() {
    let mut e = env();
    let project = e.hy.create_project("big").unwrap();
    let mut variants = Vec::new();
    for i in 0..20 {
        let cell = e.hy.create_cell(project, &format!("block{i:02}")).unwrap();
        let (cv, variant) = e.hy.create_cell_version(cell, e.flow.flow, e.team).unwrap();
        e.hy.reserve(e.alice, cv).unwrap();
        let design = generate::random_logic(30 + i * 5, i as u64);
        let sch = format::write_netlist(&design.netlists[&design.top]).into_bytes();
        let lay = format::write_layout(&design.layouts[&design.top]).into_bytes();
        e.hy.run_activity(e.alice, variant, e.flow.enter_schematic, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: sch.into(),
            }])
        })
        .unwrap();
        e.hy.run_activity(e.alice, variant, e.flow.simulate, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "waveform".into(),
                data: b"waves\n".to_vec().into(),
            }])
        })
        .unwrap();
        e.hy.run_activity(e.alice, variant, e.flow.enter_layout, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "layout".into(),
                data: lay.into(),
            }])
        })
        .unwrap();
        variants.push((cv, variant));
    }
    // Every variant: LVS clean, full provenance, three executions.
    for &(_, variant) in &variants {
        assert!(e.hy.run_lvs(e.alice, variant).unwrap().is_clean());
        assert_eq!(e.hy.jcf().executions_of(variant).len(), 3);
        let report = e.hy.jcf().what_belongs_to_what(variant);
        assert_eq!(report.len(), 3, "schematic + waveform + layout");
        assert!(report.iter().all(|r| r.created_by_activity.is_some()));
    }
    // Project-wide audit stays clean at scale.
    assert!(e.hy.verify_project(project).unwrap().is_empty());
    // And the FMCAD mirror holds 20 cells with 3 views each.
    assert_eq!(e.hy.fmcad().cells("big").unwrap().len(), 20);
}

#[test]
fn lvs_catches_a_cross_view_editing_mistake() {
    // A designer edits the schematic but forgets the layout: the nets
    // drift apart and LVS reports it.
    let design = generate::random_logic(25, 3);
    let netlist = &design.netlists[&design.top];
    let layout = &design.layouts[&design.top];
    assert!(check_lvs(netlist, layout).is_clean());

    let mut edited = netlist.clone();
    edited.add_net("hotfix_net").unwrap();
    let report = check_lvs(&edited, layout);
    assert!(!report.is_clean());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, cad_tools::LvsViolation::MissingNet { net } if net == "hotfix_net")));
}
