//! Restart persistence across both frameworks, engine-style: the
//! engine checkpoints everything (OMS image, file system image,
//! coupling state) into a backup disk, the ops applied afterwards land
//! in a persisted journal tail, and a restart is checkpoint ⊕ replay.

use cad_vfs::{Blob, Vfs, VfsPath};
use design_data::{format, generate};
use hybrid::{Engine, StagingMode, ToolOutput};
use jcf::Jcf;

/// One full power-cycle per staging mode, in a single test function so
/// the per-thread [`Blob`] materialization counters stay coherent.
#[test]
fn checkpoint_and_replay_survive_a_power_cycle_in_both_staging_modes() {
    for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
        let mat_before = Blob::materializations();

        // Day 1: a working session.
        let mut en = Engine::builder().staging_mode(mode).build();
        let admin = en.admin();
        let alice = en.add_user("alice", false).unwrap();
        let team = en.add_team(admin, "t").unwrap();
        en.add_team_member(admin, team, alice).unwrap();
        let flow = en.standard_flow("f").unwrap();
        let project = en.create_project("p").unwrap();
        let cell = en.create_cell(project, "fa").unwrap();
        let (cv, variant) = en.create_cell_version(cell, flow.flow, team).unwrap();
        en.reserve(alice, cv).unwrap();
        let bytes = format::write_netlist(&generate::full_adder()).into_bytes();
        let expected = bytes.clone();
        let dovs = en
            .run_activity(alice, variant, flow.enter_schematic, false, move |_| {
                Ok(vec![ToolOutput {
                    viewtype: "schematic".into(),
                    data: bytes.into(),
                }])
            })
            .unwrap();
        let mirror = en.mirror_of(dovs[0]).unwrap().clone();

        // Shutdown: everything lands on one backup disk.
        let mut backup = Vfs::new();
        let dir = VfsPath::parse("/backup/site-a").unwrap();
        en.checkpoint(&mut backup, &dir).unwrap();

        // Day 2 before the crash: more work lands in the journal tail —
        // including an op that fails, whose partial effects (desktop
        // clock bumps) the replay must reproduce too.
        let layout = format::write_layout(&generate::layout_for(&generate::full_adder()));
        en.run_activity(alice, variant, flow.enter_layout, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "layout".into(),
                data: layout.into_bytes().into(),
            }])
        })
        .unwrap();
        assert!(en.create_cell(project, "fa").is_err(), "duplicate cell");
        en.publish(alice, cv).unwrap();
        en.sync_journal(&mut backup, &dir).unwrap();

        // The crash. Restart = snapshot ⊕ replay.
        let restored = Engine::restore_from(&mut backup, &dir).unwrap();

        // Identical observable state: tick charges, sequence number,
        // counters, trace — and the full fingerprint (database, file
        // system tree and contents, coupling tables).
        assert_eq!(restored.io_meter(), en.io_meter(), "tick charges match");
        assert_eq!(restored.seq(), en.seq());
        assert_eq!(restored.counters().ops(), en.counters().ops());
        assert_eq!(restored.counters().failures(), en.counters().failures());
        assert_eq!(
            restored.state_fingerprint().unwrap(),
            en.state_fingerprint().unwrap(),
            "snapshot ⊕ replay must equal the live state ({mode:?})"
        );

        // The data really is there on both sides.
        assert_eq!(
            restored
                .jcf()
                .database()
                .get(dovs[0].object_id(), "data")
                .unwrap()
                .as_bytes()
                .unwrap(),
            expected.as_slice()
        );
        assert_eq!(
            restored
                .fmcad()
                .read_version(&mirror.library, &mirror.cell, &mirror.view, mirror.version)
                .unwrap(),
            expected
        );

        let materialized = Blob::materializations() - mat_before;
        match mode {
            StagingMode::ZeroCopy => assert_eq!(
                materialized, 0,
                "zero-copy staging must not deep-copy design data, even across checkpoint and replay"
            ),
            StagingMode::DeepCopy => assert!(
                materialized > 0,
                "deep-copy staging pays the physical copies, live and replayed"
            ),
        }
    }
}

#[test]
fn project_tree_renders_the_browser_view() {
    let mut jcf = Jcf::new();
    let admin = jcf.add_user("admin", true).unwrap();
    let alice = jcf.add_user("alice", false).unwrap();
    let team = jcf.add_team(admin, "t").unwrap();
    jcf.add_team_member(admin, team, alice).unwrap();
    let flow = jcf.define_flow(admin, "f").unwrap();
    let project = jcf.create_project("browser").unwrap();
    let cell = jcf.create_cell(project, "alu").unwrap();
    let (cv, variant) = jcf.create_cell_version(cell, flow, team).unwrap();
    jcf.reserve(alice, cv).unwrap();
    let vt = jcf.add_viewtype("schematic").unwrap();
    let d = jcf.create_design_object(alice, variant, "sch", vt).unwrap();
    jcf.add_design_object_version(alice, d, vec![1]).unwrap();
    jcf.add_design_object_version(alice, d, vec![2]).unwrap();

    let tree = jcf.project_tree(project);
    assert!(tree.contains("project browser"));
    assert!(tree.contains("cell alu"));
    assert!(tree.contains("version 1 [reserved by alice]"));
    assert!(tree.contains("variant base"));
    assert!(tree.contains("sch (2 version(s))"));
}
