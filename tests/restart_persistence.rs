//! Restart persistence across both frameworks: the JCF database
//! checkpoints into the shared file system and FMCAD reloads its
//! libraries from their `.meta` files — everything a real installation
//! would survive a power cycle with.

use cad_vfs::VfsPath;
use design_data::{format, generate};
use fmcad::Fmcad;
use hybrid::{Hybrid, ToolOutput};
use jcf::Jcf;

#[test]
fn both_frameworks_survive_a_power_cycle_on_one_disk() {
    // Day 1: a full working session in the hybrid environment.
    let mut hy = Hybrid::new();
    let admin = hy.admin();
    let alice = hy.jcf_mut().add_user("alice", false).unwrap();
    let team = hy.jcf_mut().add_team(admin, "t").unwrap();
    hy.jcf_mut().add_team_member(admin, team, alice).unwrap();
    let flow = hy.standard_flow("f").unwrap();
    let project = hy.create_project("p").unwrap();
    let cell = hy.create_cell(project, "fa").unwrap();
    let (cv, variant) = hy.create_cell_version(cell, flow.flow, team).unwrap();
    hy.jcf_mut().reserve(alice, cv).unwrap();
    let bytes = format::write_netlist(&generate::full_adder()).into_bytes();
    let expected = bytes.clone();
    let dovs = hy
        .run_activity(alice, variant, flow.enter_schematic, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: bytes.into(),
            }])
        })
        .unwrap();
    let mirror = hy.mirror_of(dovs[0]).unwrap().clone();

    // Shutdown: JCF checkpoints into the same disk FMCAD lives on.
    let backup = VfsPath::parse("/backup/jcf.db").unwrap();
    {
        let parent = backup.parent().unwrap();
        hy.fmcad_mut().fs().mkdir_all(&parent).unwrap();
    }
    // Checkpoint the master into a scratch disk, then place the image
    // on the FMCAD disk so one medium carries everything.
    let mut hy = { hy };
    let checkpoint_fs = {
        let mut tmp_fs = cad_vfs::Vfs::new();
        tmp_fs.mkdir_all(&backup.parent().unwrap()).unwrap();
        hy.jcf_mut().checkpoint(&mut tmp_fs, &backup).unwrap();
        let image = tmp_fs.read(&backup).unwrap();
        hy.fmcad_mut().fs().write(&backup, image).unwrap();
        hy.fmcad_mut().fs().clone()
    };
    drop(hy);

    // Day 2: restart both frameworks from the single disk.
    let mut disk = checkpoint_fs;
    let restored_jcf = {
        let mut j = Jcf::restore(&mut disk, &backup).unwrap();
        // The reservation and design data survived.
        assert_eq!(j.reserver(cv), Some(alice));
        assert_eq!(j.read_design_data(alice, dovs[0]).unwrap(), expected);
        j.publish(alice, cv).unwrap();
        j
    };
    let restored_fmcad = Fmcad::open_existing(disk).unwrap();
    assert!(restored_fmcad.libraries().contains(&"p"));
    let lib_bytes = restored_fmcad
        .read_version(&mirror.library, &mirror.cell, &mirror.view, mirror.version)
        .unwrap();
    assert_eq!(
        lib_bytes, expected,
        "the mirrored data survived on the library side"
    );
    // Cross-check: master and slave still agree byte for byte.
    assert_eq!(
        restored_jcf
            .database()
            .get(dovs[0].object_id(), "data")
            .unwrap()
            .as_bytes()
            .unwrap(),
        lib_bytes.as_slice()
    );
}

#[test]
fn project_tree_renders_the_browser_view() {
    let mut jcf = Jcf::new();
    let admin = jcf.add_user("admin", true).unwrap();
    let alice = jcf.add_user("alice", false).unwrap();
    let team = jcf.add_team(admin, "t").unwrap();
    jcf.add_team_member(admin, team, alice).unwrap();
    let flow = jcf.define_flow(admin, "f").unwrap();
    let project = jcf.create_project("browser").unwrap();
    let cell = jcf.create_cell(project, "alu").unwrap();
    let (cv, variant) = jcf.create_cell_version(cell, flow, team).unwrap();
    jcf.reserve(alice, cv).unwrap();
    let vt = jcf.add_viewtype("schematic").unwrap();
    let d = jcf.create_design_object(alice, variant, "sch", vt).unwrap();
    jcf.add_design_object_version(alice, d, vec![1]).unwrap();
    jcf.add_design_object_version(alice, d, vec![2]).unwrap();

    let tree = jcf.project_tree(project);
    assert!(tree.contains("project browser"));
    assert!(tree.contains("cell alu"));
    assert!(tree.contains("version 1 [reserved by alice]"));
    assert!(tree.contains("variant base"));
    assert!(tree.contains("sch (2 version(s))"));
}
