//! Structural-sharing proof for snapshot publication.
//!
//! A published [`hybrid::Snapshot`] and the live engine hold the *same*
//! `Arc<Object>` allocations for every object the engine has not
//! touched since the capture: publication copies handles, never
//! contents. This suite pins that property end to end — zero blob
//! materializations across capture and later writes, pointer-equal
//! object allocations for untouched objects, and copy-on-write
//! divergence for exactly the objects a later op mutates.

use cad_vfs::Blob;
use hybrid::{Engine, ToolOutput};

/// Engine with one published design object carrying real data, plus
/// the ids the probes need.
fn seeded() -> (Engine, jcf::UserId, jcf::CellVersionId, jcf::DovId) {
    let mut en = Engine::new();
    let admin = en.admin();
    let alice = en.add_user("alice", false).expect("fresh user");
    let team = en.add_team(admin, "asic").expect("fresh team");
    en.add_team_member(admin, team, alice)
        .expect("manager adds");
    let flow = en.standard_flow("std").expect("fresh flow");
    let project = en.create_project("alu").expect("fresh project");
    let cell = en.create_cell(project, "adder").expect("fresh cell");
    let (cv, variant) = en
        .create_cell_version(cell, flow.flow, team)
        .expect("fresh version");
    en.reserve(alice, cv).expect("free version");
    let dovs = en
        .run_activity(alice, variant, flow.enter_schematic, false, |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: b"netlist adder\nport a input\n".to_vec().into(),
            }])
        })
        .expect("activity runs");
    (en, alice, cv, dovs[0])
}

/// Capturing a snapshot and then mutating the engine moves zero design
/// bytes: publication is handle copies, and later writes path-copy
/// only trie spines, never payloads.
#[test]
fn capture_and_later_writes_materialize_nothing() {
    let (mut en, _alice, _cv, _dov) = seeded();
    let before = Blob::materializations();
    let snap = en.snapshot();
    en.create_project("filter").expect("fresh project");
    en.create_project("dsp").expect("fresh project");
    assert_eq!(
        Blob::materializations(),
        before,
        "capture + unrelated writes must copy no design bytes"
    );
    assert_eq!(snap.seq() + 2, en.seq(), "snapshot stayed frozen");
}

/// Objects the engine does not touch after the capture stay the *same
/// allocation* in both the live database and the snapshot; an op that
/// touches an object unshares exactly that object.
#[test]
fn untouched_objects_stay_shared_touched_objects_diverge() {
    let (mut en, alice, cv, dov) = seeded();
    let snap = en.snapshot();

    let sentinel = dov.object_id();
    let cv_obj = cv.object_id();
    let live = |en: &Engine| -> bool {
        en.jcf()
            .database()
            .object_shared_with(snap.jcf().database(), sentinel)
    };
    assert!(live(&en), "capture shares every object allocation");
    assert!(en
        .jcf()
        .database()
        .object_shared_with(snap.jcf().database(), cv_obj));

    // Unrelated growth leaves both probes shared.
    en.create_project("filter").expect("fresh project");
    assert!(live(&en), "unrelated writes must not copy the dov object");

    // Publishing flips the published flag on the dov object (and
    // releases the reservation on the cell version object): both
    // diverge from the snapshot, nothing else does.
    en.publish(alice, cv).expect("holder publishes");
    assert!(
        !en.jcf()
            .database()
            .object_shared_with(snap.jcf().database(), sentinel),
        "publish touched the dov object, so it must diverge"
    );
    assert_eq!(
        snap.jcf().is_published(dov),
        Ok(false),
        "the snapshot keeps the pre-publish state"
    );
    assert_eq!(en.jcf().is_published(dov), Ok(true));
}

/// The engine-level capture cache: repeat `snapshot()` calls at one
/// sequence number return one shared `Arc<Snapshot>`, and any applied
/// op retires it.
#[test]
fn capture_is_cached_per_sequence_number() {
    let (mut en, _alice, _cv, _dov) = seeded();
    let a = en.snapshot();
    let b = en.snapshot();
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "unchanged engine republishes the same snapshot"
    );
    en.create_project("filter").expect("fresh project");
    let c = en.snapshot();
    assert!(
        !std::sync::Arc::ptr_eq(&a, &c),
        "an applied op must retire the cached snapshot"
    );
    assert_eq!(c.seq(), a.seq() + 1);
}
